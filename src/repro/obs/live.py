"""Live telemetry: streaming sinks, progress monitoring, shard merge.

Three pieces, all usable independently of the simulator:

- **Streaming sinks** (:class:`StreamingSink` and its codec subclasses):
  a newline-delimited-JSON event stream the tracer drains to in chunks
  at ring-wrap, so long runs keep O(1) memory instead of dropping the
  oldest events. Writes go to a ``<path>.tmp`` staging file; ``close()``
  atomically renames it into place (the BENCH_hotpath.json idiom), so a
  killed run never leaves a truncated trace behind.
- **ProgressMonitor**: throughput/ETA tracking with periodic snapshot
  lines, built on an injectable clock so tests can drive it
  deterministically. The simulation packages never read wall time
  (BF202); they only call :meth:`ProgressMonitor.advance`, and the
  clock read happens here, inside ``obs``.
- **Shard progress** (:func:`bind_worker_queue`, :func:`post_shard`,
  :class:`ProgressAggregator`): workers in the ``ProcessPoolExecutor``
  fan-out post per-shard payloads to a multiprocessing queue; the
  parent drains the queue and merges with a deterministic
  (shard-sorted, order-independent) fold before feeding the monitor.
"""

import json
import os
import queue as _queue
import sys
import time

from repro.obs import events as ev
from repro.obs import export


# -- streaming sinks -----------------------------------------------------------


class StreamingSink:
    """Plain-JSONL streaming event sink (and the sink protocol).

    The protocol the tracer relies on: ``write_events(iterable) -> n``
    (durable once returned), ``reset()`` (discard everything written so
    far — measurement reset), ``close() -> path`` (atomic finalize,
    idempotent), ``abort()`` (drop the staging file), ``snapshot()``
    (JSON-ready accounting dict).
    """

    codec = "jsonl"

    def __init__(self, path):
        self.path = str(path)
        self.tmp_path = self.path + ".tmp"
        self.events_written = 0
        self.flushes = 0
        self.finalized = False
        self._handle = self._open()

    def _open(self):
        return export.open_text(self.tmp_path, "w", codec=self._codec_name())

    def _codec_name(self):
        return {"jsonl": "plain", "gzip": "gzip", "zstd": "zstd"}[self.codec]

    def write_events(self, events):
        """Append a chunk of event tuples as JSONL; returns the count.

        The handle is flushed before returning so everything written is
        durable even if the process dies before ``close()`` (the staging
        file is then a complete prefix of the stream, just not yet
        renamed into place).
        """
        handle = self._handle
        dumps = json.dumps
        to_dict = ev.event_to_dict
        count = 0
        for event in events:
            handle.write(dumps(to_dict(event), sort_keys=True))
            handle.write("\n")
            count += 1
        handle.flush()
        self.events_written += count
        self.flushes += 1
        return count

    def reset(self):
        """Truncate the stream (warm-up events discarded at
        ``reset_measurement``, exactly like the in-memory ring)."""
        self._handle.close()
        self._handle = self._open()
        self.events_written = 0
        self.flushes = 0

    def close(self):
        """Finalize: flush, close, and atomically rename the staging
        file to the real path. Idempotent; returns the final path."""
        if not self.finalized:
            self._handle.close()
            os.replace(self.tmp_path, self.path)
            self.finalized = True
        return self.path

    def abort(self):
        """Close and remove the staging file without finalizing."""
        if not self.finalized:
            self._handle.close()
            try:
                os.remove(self.tmp_path)
            except OSError:
                pass

    def snapshot(self):
        return {"path": self.path, "codec": self.codec,
                "events_written": self.events_written,
                "flushes": self.flushes, "finalized": self.finalized}


class JsonlSink(StreamingSink):
    codec = "jsonl"


class GzipSink(StreamingSink):
    codec = "gzip"


class ZstdSink(StreamingSink):
    """Optional: requires stdlib ``compression.zstd`` (3.14+) or the
    ``zstandard`` package; :meth:`_open` raises RuntimeError otherwise."""

    codec = "zstd"


_SINK_BY_CODEC = {"plain": JsonlSink, "gzip": GzipSink, "zstd": ZstdSink}


def open_sink(path):
    """A streaming sink for ``path``, codec chosen by suffix
    (``.jsonl`` plain, ``.gz`` gzip, ``.zst`` zstd)."""
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    return _SINK_BY_CODEC[export.codec_of(path)](path)


# -- progress monitoring -------------------------------------------------------


def _stderr_emit(line):
    print(line, file=sys.stderr, flush=True)


class ProgressMonitor:
    """Throughput/ETA tracker emitting periodic snapshot lines.

    Producers call :meth:`advance` with work deltas (and optionally an
    absolute punt total, for engines that keep their own counter); a
    snapshot line is emitted whenever ``interval`` seconds have passed
    since the last one. The clock and the emit function are injectable,
    so tests drive it with a fake clock and capture lines in a list.
    """

    def __init__(self, total=None, unit="records", label="progress",
                 interval=1.0, clock=time.perf_counter, emit=None):
        self.total = total
        self.unit = unit
        self.label = label
        self.interval = interval
        self.clock = clock
        self.emit = _stderr_emit if emit is None else emit
        self.started = clock()
        self.done = 0
        self.punts = 0
        self.counters = {}
        self.lines_emitted = 0
        self._last_time = self.started
        self._last_done = 0
        self._last_punts = 0

    # -- producers ---------------------------------------------------------

    def advance(self, amount=0, punts=0, punts_total=None):
        self.done += amount
        if punts_total is not None:
            self.punts = punts_total
        else:
            self.punts += punts
        now = self.clock()
        if now - self._last_time >= self.interval:
            self._emit_line(now)

    def advance_to(self, done_total, punts_total=None):
        """Absolute form of :meth:`advance` (aggregated shard totals)."""
        self.advance(max(0, done_total - self.done),
                     punts_total=punts_total)

    def count(self, name, amount=1):
        """A named auxiliary counter (launches, kills, cache hits...)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- derived quantities ------------------------------------------------

    def rate(self, now=None):
        """Whole-run throughput in units/second."""
        now = self.clock() if now is None else now
        elapsed = now - self.started
        return self.done / elapsed if elapsed > 0 else 0.0

    def window_rate(self, now=None):
        """Throughput since the last emitted line (falls back to the
        whole-run rate before the first line)."""
        now = self.clock() if now is None else now
        window = now - self._last_time
        if window <= 0:
            return self.rate(now)
        return (self.done - self._last_done) / window

    def punt_rate(self, now=None):
        now = self.clock() if now is None else now
        elapsed = now - self.started
        return self.punts / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self, now=None):
        """Seconds to completion from the window rate; None when no
        total is known or nothing has moved yet."""
        if self.total is None:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        rate = self.window_rate(now)
        if rate <= 0:
            rate = self.rate(now)
        if rate <= 0:
            return None
        return remaining / rate

    # -- lines -------------------------------------------------------------

    def snapshot_line(self, now=None):
        now = self.clock() if now is None else now
        parts = ["[%s]" % self.label]
        if self.total is not None:
            pct = 100.0 * self.done / self.total if self.total else 100.0
            parts.append("%s/%s %s (%.1f%%)"
                         % (_human(self.done), _human(self.total),
                            self.unit, pct))
        else:
            parts.append("%s %s" % (_human(self.done), self.unit))
        parts.append("%s %s/s" % (_human_rate(self.window_rate(now)),
                                  self.unit))
        if self.punts:
            parts.append("punts %s (%s/s)"
                         % (_human(self.punts),
                            _human_rate(self.punt_rate(now))))
        for name in sorted(self.counters):
            parts.append("%s %s" % (name, _human(self.counters[name])))
        eta = self.eta_seconds(now)
        if eta is not None:
            parts.append("eta %s" % _human_seconds(eta))
        parts.append("elapsed %s" % _human_seconds(now - self.started))
        return " | ".join(parts)

    def _emit_line(self, now):
        self.emit(self.snapshot_line(now))
        self.lines_emitted += 1
        self._last_time = now
        self._last_done = self.done
        self._last_punts = self.punts

    def finish(self):
        """Emit (and return) a final whole-run summary line."""
        now = self.clock()
        parts = ["[%s] done:" % self.label,
                 "%s %s" % (_human(self.done), self.unit),
                 "%s %s/s" % (_human_rate(self.rate(now)), self.unit)]
        if self.punts:
            parts.append("punts %s" % _human(self.punts))
        for name in sorted(self.counters):
            parts.append("%s %s" % (name, _human(self.counters[name])))
        parts.append("elapsed %s" % _human_seconds(now - self.started))
        line = " | ".join(parts)
        self.emit(line)
        self.lines_emitted += 1
        return line

    def as_dict(self):
        now = self.clock()
        return {"label": self.label, "unit": self.unit, "done": self.done,
                "total": self.total, "punts": self.punts,
                "counters": dict(sorted(self.counters.items())),
                "rate": self.rate(now), "elapsed": now - self.started,
                "lines_emitted": self.lines_emitted}


def _human(value):
    return format(int(value), ",d")


def _human_rate(value):
    if value >= 1_000_000:
        return "%.2fM" % (value / 1_000_000)
    if value >= 10_000:
        return "%.1fk" % (value / 1_000)
    return "%.1f" % value


def _human_seconds(seconds):
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, (seconds % 3600) // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%.1fs" % seconds


# -- per-shard progress across the process pool --------------------------------

#: Worker-side queue handle; written exactly once per worker, from the
#: pool initializer (runner._init_worker), which is the BF601-sanctioned
#: place for worker-global setup.
_WORKER_QUEUE = None


def bind_worker_queue(q):
    """Install the shard-progress queue in a pool worker (call from the
    pool initializer only)."""
    global _WORKER_QUEUE
    _WORKER_QUEUE = q


def post_shard(shard, **payload):
    """Post a per-shard progress payload (integer deltas) from a worker;
    a no-op when no queue is bound (sequential runs, plain workers)."""
    q = _WORKER_QUEUE
    if q is not None:
        q.put((shard, payload))


class ProgressAggregator:
    """Order-independent merge of per-shard progress payloads.

    Payload values are summed per shard, then shards are folded in
    sorted order — so the merged totals are identical no matter how the
    queue interleaved deliveries from concurrent workers.
    """

    def __init__(self):
        self.shards = {}

    def apply(self, shard, payload):
        slot = self.shards.setdefault(shard, {})
        for key, value in payload.items():
            slot[key] = slot.get(key, 0) + value

    def drain(self, q):
        """Consume everything currently queued; returns the number of
        payloads applied."""
        applied = 0
        while True:
            try:
                shard, payload = q.get_nowait()
            except _queue.Empty:
                break
            self.apply(shard, payload)
            applied += 1
        return applied

    def merged(self):
        """Deterministic aggregate: payload keys summed across shards in
        sorted shard order."""
        totals = {}
        for shard in sorted(self.shards, key=str):
            for key, value in self.shards[shard].items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def feed(self, monitor):
        """Advance ``monitor`` to the merged totals (keys: ``done``
        primary, ``punts`` absolute, anything else a named counter)."""
        totals = self.merged()
        for key, value in totals.items():
            if key not in ("done", "punts"):
                monitor.counters[key] = value
        monitor.advance_to(totals.get("done", 0),
                           punts_total=totals.get("punts"))
        return totals
