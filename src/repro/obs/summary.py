"""Run summaries and diffs over observability snapshots.

A *snapshot* is what :meth:`repro.obs.tracer.Tracer.snapshot` returns
(and ``RunResult.obs`` stores): trace ring accounting plus the metrics
registry. ``summarize`` turns it into the triage views the paper's
evaluation reads off Figures 9-11 — per-container fault breakdown,
shared-vs-private TLB hit matrix, hottest VPNs, walk-latency
distribution. ``diff`` flattens two snapshots into per-metric scalars
and reports the deltas, which is how a perf regression is localized:
metrics untouched by a change diff to zero, so whatever is left *is*
the change.
"""


def _counters(snapshot, name):
    for entry in snapshot["metrics"].get("counters", []):
        if entry["name"] == name:
            yield entry["labels"], entry["value"]


def _histogram(snapshot, name):
    for entry in snapshot["metrics"].get("histograms", []):
        if entry["name"] == name and not entry["labels"]:
            return entry
    return None


def summarize(snapshot, top=10):
    """Structured triage summary of one snapshot."""
    faults_by_pid = {}
    fault_totals = {}
    for labels, value in _counters(snapshot, "faults"):
        pid, kind = labels.get("pid"), labels.get("kind")
        faults_by_pid.setdefault(pid, {})[kind] = value
        fault_totals[kind] = fault_totals.get(kind, 0) + value

    hit_matrix = {}
    for labels, value in _counters(snapshot, "tlb_hits"):
        level = labels.get("level")
        slot = hit_matrix.setdefault(level, {"shared": 0, "private": 0})
        slot[labels.get("provenance")] = \
            slot.get(labels.get("provenance"), 0) + value
    shared_fractions = {}
    for level, slot in sorted(hit_matrix.items()):
        total = slot["shared"] + slot["private"]
        shared_fractions[level] = slot["shared"] / total if total else 0.0

    heat = sorted(((labels["vpn"], value)
                   for labels, value in _counters(snapshot, "vpn_accesses")),
                  key=lambda item: (-item[1], item[0]))

    walk = _histogram(snapshot, "walk_cycles")
    walk_stats = None
    if walk is not None and walk["count"]:
        walk_stats = {"count": walk["count"],
                      "mean_cycles": walk["sum"] / walk["count"],
                      "min_cycles": walk["min"], "max_cycles": walk["max"]}

    return {
        "events": {"emitted": snapshot.get("events_emitted", 0),
                   "kept": snapshot.get("events_kept", 0),
                   "dropped": snapshot.get("events_dropped", 0)},
        "faults_by_container": {pid: dict(sorted(kinds.items()))
                                for pid, kinds in sorted(faults_by_pid.items())},
        "fault_totals": dict(sorted(fault_totals.items())),
        "tlb_hit_matrix": {level: dict(slot)
                           for level, slot in sorted(hit_matrix.items())},
        "shared_hit_fractions": shared_fractions,
        "hot_vpns": heat[:top],
        "walks": walk_stats,
    }


def format_summary(summary):
    lines = []
    events = summary["events"]
    lines.append("events: %d emitted, %d kept, %d dropped (ring bound)"
                 % (events["emitted"], events["kept"], events["dropped"]))

    lines.append("\nfaults per container (pid: kind=count)")
    if not summary["faults_by_container"]:
        lines.append("  (none)")
    for pid, kinds in summary["faults_by_container"].items():
        lines.append("  pid %-6s %s" % (
            pid, "  ".join("%s=%d" % (kind, count)
                           for kind, count in kinds.items())))

    lines.append("\nTLB hits, shared vs private provenance")
    for level, slot in summary["tlb_hit_matrix"].items():
        fraction = summary["shared_hit_fractions"].get(level, 0.0)
        lines.append("  %-4s shared %-10d private %-10d shared-fraction %.3f"
                     % (level, slot["shared"], slot["private"], fraction))

    if summary["walks"]:
        walks = summary["walks"]
        lines.append("\npage walks: %d, mean %.1f cycles (min %d, max %d)"
                     % (walks["count"], walks["mean_cycles"],
                        walks["min_cycles"], walks["max_cycles"]))

    lines.append("\nhottest VPNs (accesses)")
    if not summary["hot_vpns"]:
        lines.append("  (tlb events disabled)")
    for vpn, count in summary["hot_vpns"]:
        lines.append("  %#014x  %d" % (vpn, count))
    return "\n".join(lines)


# -- diffing ----------------------------------------------------------------


def flatten(snapshot):
    """Snapshot -> {metric key: scalar} for per-metric diffing.

    Counters and gauges flatten directly; histograms contribute their
    ``.count`` and ``.sum`` (enough to localize both "how often" and
    "how expensive" regressions).
    """
    flat = {}
    metrics = snapshot["metrics"]
    for kind in ("counters", "gauges"):
        for entry in metrics.get(kind, []):
            flat[_metric_key(entry)] = entry["value"]
    for entry in metrics.get("histograms", []):
        key = _metric_key(entry)
        flat[key + ".count"] = entry["count"]
        flat[key + ".sum"] = entry["sum"]
    return flat


def _metric_key(entry):
    labels = ",".join("%s=%s" % (k, v)
                      for k, v in sorted(entry["labels"].items()))
    return "%s{%s}" % (entry["name"], labels) if labels else entry["name"]


def diff(snapshot_a, snapshot_b):
    """Per-metric deltas (b - a) as rows ``(key, a, b, delta)`` over the
    union of both snapshots' metrics (missing side reads as 0)."""
    flat_a, flat_b = flatten(snapshot_a), flatten(snapshot_b)
    rows = []
    for key in sorted(set(flat_a) | set(flat_b)):
        a, b = flat_a.get(key, 0), flat_b.get(key, 0)
        rows.append((key, a, b, b - a))
    return rows


def format_diff(rows, only_changed=True):
    shown = [row for row in rows if row[3] != 0] if only_changed else rows
    if not shown:
        return "no metric deltas"
    width = max(len(row[0]) for row in shown)
    lines = ["%-*s  %12s  %12s  %+12s" % (width, "metric", "a", "b", "delta")]
    for key, a, b, delta in shown:
        lines.append("%-*s  %12d  %12d  %+12d" % (width, key, a, b, delta))
    unchanged = len(rows) - len(shown)
    if only_changed and unchanged:
        lines.append("(%d metrics unchanged)" % unchanged)
    return "\n".join(lines)
