"""repro.obs — observability for the simulator stack.

Three layers, importable by any other package (obs itself imports
nothing above the standard library, so it sits at the bottom of the
BF101 layering DAG):

- **event tracing** (:mod:`repro.obs.tracer`, :mod:`repro.obs.events`):
  a bounded ring of typed events emitted from hook points in the MMU,
  walker, fault path, and scheduler, gated by ``SimConfig(trace=...)``
  and costing nothing when disabled;
- **metrics** (:mod:`repro.obs.metrics`): labelled counters/gauges/log2
  histograms with snapshot and merge semantics matching the parallel
  runner's worker fan-out;
- **phase profiling + exporters** (:mod:`repro.obs.profile`,
  :mod:`repro.obs.export`, :mod:`repro.obs.summary`): wall-clock spans
  for the harness, JSONL and Chrome ``trace_event`` sinks, and the
  ``python -m repro.obs`` summarize/diff/perfwatch CLI;
- **live telemetry** (:mod:`repro.obs.live`, :mod:`repro.obs.perfwatch`):
  streaming event sinks (JSONL/gzip/optional-zstd, atomic tmp+rename
  finalize) the tracer drains at ring-wrap, a ProgressMonitor with
  throughput/ETA snapshot lines, deterministic per-shard progress
  aggregation for the process-pool fan-out, and the perf-regression
  watchdog over BENCH_hotpath.json trajectories.
"""

from repro.obs.events import event_from_dict, event_to_dict
from repro.obs.live import (
    GzipSink,
    JsonlSink,
    ProgressAggregator,
    ProgressMonitor,
    StreamingSink,
    ZstdSink,
    open_sink,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    map_label,
    merge_snapshots,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import (
    TraceOptions,
    Tracer,
    replay_events,
    resolve_trace_options,
)
from repro.obs.export import (
    chrome_trace,
    open_text,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.summary import diff, flatten, format_summary, summarize

__all__ = [
    "Counter", "Gauge", "GzipSink", "Histogram", "JsonlSink",
    "MetricsRegistry", "PhaseProfiler", "ProgressAggregator",
    "ProgressMonitor", "StreamingSink", "TraceOptions", "Tracer",
    "ZstdSink", "chrome_trace", "diff", "event_from_dict",
    "event_to_dict", "flatten", "format_summary", "map_label",
    "merge_snapshots", "open_sink", "open_text", "replay_events",
    "resolve_trace_options", "summarize", "write_chrome_trace",
    "write_jsonl",
]
