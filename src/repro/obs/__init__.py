"""repro.obs — observability for the simulator stack.

Three layers, importable by any other package (obs itself imports
nothing above the standard library, so it sits at the bottom of the
BF101 layering DAG):

- **event tracing** (:mod:`repro.obs.tracer`, :mod:`repro.obs.events`):
  a bounded ring of typed events emitted from hook points in the MMU,
  walker, fault path, and scheduler, gated by ``SimConfig(trace=...)``
  and costing nothing when disabled;
- **metrics** (:mod:`repro.obs.metrics`): labelled counters/gauges/log2
  histograms with snapshot and merge semantics matching the parallel
  runner's worker fan-out;
- **phase profiling + exporters** (:mod:`repro.obs.profile`,
  :mod:`repro.obs.export`, :mod:`repro.obs.summary`): wall-clock spans
  for the harness, JSONL and Chrome ``trace_event`` sinks, and the
  ``python -m repro.obs`` summarize/diff CLI.
"""

from repro.obs.events import event_to_dict
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    map_label,
    merge_snapshots,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import TraceOptions, Tracer, resolve_trace_options
from repro.obs.export import (
    chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.summary import diff, flatten, format_summary, summarize

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "PhaseProfiler",
    "TraceOptions", "Tracer", "chrome_trace", "diff", "event_to_dict",
    "flatten", "format_summary", "map_label", "merge_snapshots",
    "resolve_trace_options", "summarize", "write_chrome_trace",
    "write_jsonl",
]
