"""Trace exporters: JSONL event sink and Chrome ``trace_event`` JSON.

The JSONL sink is the machine-readable firehose (one event dict per
line, grep/jq-friendly). The Chrome exporter produces the subset of the
`trace_event format <https://docs.google.com/document/d/1CvAClvFfyA5R-
PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_ that ``chrome://tracing`` and Perfetto
load: one track (tid) per core under a single "simulator" process,
complete events ("ph": "X") for scheduler quanta, and instant events
("ph": "i") for faults and TLB invalidations. Timestamps are core-local
cycles presented as microseconds — relative spans are what matter.
"""

import json

from repro.obs import events as ev

#: The single chrome-trace process all core tracks live under.
_TRACE_PID = 0


def write_jsonl(events, path):
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w") as sink:
        for event in events:
            sink.write(json.dumps(ev.event_to_dict(event), sort_keys=True))
            sink.write("\n")
            count += 1
    return count


def read_jsonl(path):
    with open(path) as source:
        return [json.loads(line) for line in source if line.strip()]


def chrome_trace_events(events):
    """Chrome ``traceEvents`` list for a run's event stream."""
    out = []
    cores = sorted({event[1] for event in events})
    for core in cores:
        out.append({"name": "thread_name", "ph": "M", "pid": _TRACE_PID,
                    "tid": core, "args": {"name": "core %d" % core}})
    for event in events:
        etype, core, cycle, pid = event[0], event[1], event[2], event[3]
        if etype == ev.QUANTUM:
            end_cycle, instructions = event[4], event[5]
            out.append({"name": "pid %d" % pid, "cat": "sched", "ph": "X",
                        "pid": _TRACE_PID, "tid": core, "ts": cycle,
                        "dur": max(0, end_cycle - cycle),
                        "args": {"pid": pid, "instructions": instructions}})
        elif etype == ev.FAULT:
            vpn, kind = event[4], event[5]
            out.append({"name": "fault:%s" % kind, "cat": "fault", "ph": "i",
                        "s": "t", "pid": _TRACE_PID, "tid": core, "ts": cycle,
                        "args": {"pid": pid, "vpn": vpn,
                                 "cycles": event[6]}})
        elif etype == ev.INVALIDATION:
            vpn, scope = event[4], event[5]
            out.append({"name": "inval:%s" % scope, "cat": "tlb", "ph": "i",
                        "s": "t", "pid": _TRACE_PID, "tid": core, "ts": cycle,
                        "args": {"pid": pid, "vpn": vpn}})
    return out


def chrome_trace(events, metadata=None):
    """The full JSON-object form of the trace_event format."""
    doc = {"traceEvents": chrome_trace_events(events),
           "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(events, path, metadata=None):
    doc = chrome_trace(events, metadata)
    with open(path, "w") as sink:
        json.dump(doc, sink, sort_keys=True)
    return len(doc["traceEvents"])
