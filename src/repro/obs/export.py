"""Trace exporters: JSONL event sink and Chrome ``trace_event`` JSON.

The JSONL sink is the machine-readable firehose (one event dict per
line, grep/jq-friendly). The Chrome exporter produces the subset of the
`trace_event format <https://docs.google.com/document/d/1CvAClvFfyA5R-
PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_ that ``chrome://tracing`` and Perfetto
load: one track (tid) per core under a single "simulator" process,
complete events ("ph": "X") for scheduler quanta, and instant events
("ph": "i") for faults and TLB invalidations. Timestamps are core-local
cycles presented as microseconds — relative spans are what matter.

Every writer here is atomic (tmp file + ``os.replace``, the same idiom
the perf harness uses for BENCH_hotpath.json): a killed run leaves
either the previous complete artifact or a stray ``*.tmp``, never a
truncated ``trace.jsonl``. Paths ending in ``.gz`` or ``.zst`` are
compressed/decompressed transparently on both the read and write side
(zstd only when a zstd module is importable — it is optional and never
required by any default path).
"""

import gzip
import json
import os

from repro.obs import events as ev

#: The single chrome-trace process all core tracks live under.
_TRACE_PID = 0

try:  # Python 3.14+ ships zstd in the standard library.
    from compression import zstd as _zstd_std
except ImportError:
    _zstd_std = None
try:  # third-party backport; optional.
    import zstandard as _zstd_pkg
except ImportError:
    _zstd_pkg = None


def zstd_available():
    """True when some zstd implementation is importable."""
    return _zstd_std is not None or _zstd_pkg is not None


def codec_of(path):
    """Compression codec implied by a path suffix."""
    name = str(path)
    if name.endswith(".gz"):
        return "gzip"
    if name.endswith(".zst"):
        return "zstd"
    return "plain"


def open_text(path, mode="rt", codec=None):
    """Open a text stream, dispatching on the path's compression suffix.

    ``codec`` overrides suffix detection — the streaming sinks write to
    ``<path>.tmp`` staging files whose suffix no longer names the codec.
    """
    codec = codec or codec_of(path)
    if "b" in mode:
        raise ValueError("open_text is text-only; got mode %r" % mode)
    text_mode = mode if "t" in mode else mode + "t"
    if codec == "gzip":
        return gzip.open(path, text_mode)
    if codec == "zstd":
        if _zstd_std is not None:
            return _zstd_std.open(path, text_mode)
        if _zstd_pkg is not None:
            return _zstd_pkg.open(path, text_mode)
        raise RuntimeError(
            "%s needs a zstd module (stdlib compression.zstd or the "
            "zstandard package); neither is installed — use .gz or plain "
            ".jsonl instead" % path)
    return open(path, mode.replace("t", "") or "r")


def _atomic_text(path, write_fn, codec=None):
    """Write a text artifact via tmp + ``os.replace``; cleans up the tmp
    file if the writer raises."""
    path = str(path)
    tmp = path + ".tmp"
    try:
        with open_text(tmp, "w", codec=codec or codec_of(path)) as sink:
            result = write_fn(sink)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return result


def write_jsonl(events, path):
    """Atomically write events as JSON Lines; returns the number
    written. A ``.gz``/``.zst`` suffix compresses the stream."""

    def emit(sink):
        count = 0
        for event in events:
            sink.write(json.dumps(ev.event_to_dict(event), sort_keys=True))
            sink.write("\n")
            count += 1
        return count

    return _atomic_text(path, emit)


def read_jsonl(path):
    with open_text(path) as source:
        return [json.loads(line) for line in source if line.strip()]


def chrome_trace_events(events):
    """Chrome ``traceEvents`` list for a run's event stream."""
    out = []
    cores = sorted({event[1] for event in events})
    for core in cores:
        out.append({"name": "thread_name", "ph": "M", "pid": _TRACE_PID,
                    "tid": core, "args": {"name": "core %d" % core}})
    for event in events:
        etype, core, cycle, pid = event[0], event[1], event[2], event[3]
        if etype == ev.QUANTUM:
            end_cycle, instructions = event[4], event[5]
            out.append({"name": "pid %d" % pid, "cat": "sched", "ph": "X",
                        "pid": _TRACE_PID, "tid": core, "ts": cycle,
                        "dur": max(0, end_cycle - cycle),
                        "args": {"pid": pid, "instructions": instructions}})
        elif etype == ev.FAULT:
            vpn, kind = event[4], event[5]
            out.append({"name": "fault:%s" % kind, "cat": "fault", "ph": "i",
                        "s": "t", "pid": _TRACE_PID, "tid": core, "ts": cycle,
                        "args": {"pid": pid, "vpn": vpn,
                                 "cycles": event[6]}})
        elif etype == ev.INVALIDATION:
            vpn, scope = event[4], event[5]
            out.append({"name": "inval:%s" % scope, "cat": "tlb", "ph": "i",
                        "s": "t", "pid": _TRACE_PID, "tid": core, "ts": cycle,
                        "args": {"pid": pid, "vpn": vpn}})
    return out


def chrome_trace(events, metadata=None):
    """The full JSON-object form of the trace_event format."""
    doc = {"traceEvents": chrome_trace_events(events),
           "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(events, path, metadata=None):
    doc = chrome_trace(events, metadata)
    _atomic_text(path, lambda sink: json.dump(doc, sink, sort_keys=True))
    return len(doc["traceEvents"])
