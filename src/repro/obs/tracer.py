"""The event tracer: a bounded ring of typed events + online metrics.

Tracing is configured through ``SimConfig(trace=...)`` exactly like the
translation sanitizer: ``None``/``False`` (the default) disables it and
the simulator leaves every ``tracer`` attribute ``None``, so the hot
path pays only an ``is not None`` test — no calls, no allocations. Any
truthy value enables it: ``True`` for defaults, a :class:`TraceOptions`
(or its field dict, as rehydrated from a cache entry) to tune the ring
size or mute event families.

The ring is a ``deque(maxlen=...)``: long runs keep the freshest events
(the interesting tail) while the registry — which every event is folded
into as it is emitted — keeps exact whole-run aggregates. That is why
``summarize`` can cross-check the :class:`~repro.sim.stats.MMUStats`
counters even when the ring has wrapped.

With ``TraceOptions(sink=...)`` the ring becomes a write-behind buffer
instead of a lossy window: when it fills, the whole chunk is drained to
a :class:`~repro.obs.live.StreamingSink` (JSONL, ``.gz``, or ``.zst``
by suffix) and cleared, so nothing is ever dropped and memory stays
O(buffer_size) no matter how long the run is. :func:`replay_events`
closes the loop — folding a streamed file back through the same
emitters reproduces the exact registry the live run built, which is how
the ring/stream equivalence is proven.
"""

import collections
import dataclasses

from repro.obs import events as ev
from repro.obs import live
from repro.obs.metrics import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class TraceOptions:
    """What to record; all families default on."""

    #: Ring capacity in events; older events are dropped (the registry
    #: still aggregates them) — unless ``sink`` is set, in which case a
    #: full ring is drained to the sink and nothing is lost.
    buffer_size: int = 1 << 16
    tlb: bool = True
    walks: bool = True
    faults: bool = True
    sched: bool = True
    invalidations: bool = True
    lifecycle: bool = True
    #: Streaming sink path (a plain string keeps this dataclass hashable
    #: for the run-cache key); ``.gz``/``.zst`` suffixes select the
    #: compressed codecs. None keeps the classic drop-oldest ring.
    sink: str = None


def resolve_trace_options(trace):
    """``SimConfig.trace`` value -> :class:`TraceOptions` or None."""
    if not trace:
        return None
    if trace is True:
        return TraceOptions()
    if isinstance(trace, TraceOptions):
        return trace
    if isinstance(trace, dict):
        return TraceOptions(**trace)
    raise TypeError("SimConfig.trace must be None, True, TraceOptions, "
                    "or a TraceOptions field dict; got %r" % (trace,))


class Tracer:
    """Collects typed events and aggregates them into a registry.

    Emit methods take the emitting core and the acting process's pid;
    timestamps come from the per-core clock the simulator advances with
    :meth:`tick` (core-local cycles, the only time the simulation has).
    """

    def __init__(self, options=None):
        self.options = options or TraceOptions()
        self.events = collections.deque(maxlen=self.options.buffer_size)
        self.registry = MetricsRegistry()
        self.emitted = 0
        self.streamed = 0
        self.sink = (live.open_sink(self.options.sink)
                     if self.options.sink else None)
        self._clock = {}

    # -- clock -------------------------------------------------------------

    def tick(self, core, cycle):
        self._clock[core] = cycle

    def clock(self, core):
        return self._clock.get(core, 0)

    @property
    def dropped(self):
        """Events lost to ring wrap; always 0 with a sink attached (the
        ring drains instead of dropping)."""
        if self.sink is not None:
            return 0
        return self.emitted - len(self.events)

    def reset(self):
        """Forget everything (the simulator's ``reset_measurement``:
        warm-up events must not leak into the measured snapshot). With a
        sink attached, its staging file is truncated too."""
        self.events.clear()
        self.registry = MetricsRegistry()
        self.emitted = 0
        self.streamed = 0
        if self.sink is not None:
            self.sink.reset()
        self._clock = {}

    def _emit(self, event):
        events = self.events
        if self.sink is not None and len(events) == events.maxlen:
            self.flush()
        events.append(event)
        self.emitted += 1

    # -- streaming ---------------------------------------------------------

    def flush(self):
        """Drain the ring to the sink (chunked flush at ring-wrap, and
        at end-of-run so the staging file always holds the full stream).
        No-op without a sink; returns the number of events written."""
        if self.sink is None or self.sink.finalized or not self.events:
            return 0
        written = self.sink.write_events(self.events)
        self.events.clear()
        self.streamed += written
        return written

    def finalize(self):
        """Drain the tail and atomically publish the sink file; returns
        its path (None without a sink). Call once the whole experiment
        is done — the tracer stops streaming afterwards."""
        if self.sink is None:
            return None
        self.flush()
        return self.sink.close()

    # -- emitters ----------------------------------------------------------

    def tlb_hit(self, core, pid, level, vpn, shared):
        if not self.options.tlb:
            return
        provenance = ev.PROVENANCE_SHARED if shared else ev.PROVENANCE_PRIVATE
        self._emit((ev.TLB_HIT, core, self._clock.get(core, 0), pid,
                    level, vpn, provenance))
        self.registry.counter("tlb_hits", level=level,
                              provenance=provenance, pid=pid).inc()
        if level != "L2":
            # One L1-level event per access (hit or miss), so this is the
            # per-VPN access heat behind ``summarize --top``.
            self.registry.counter("vpn_accesses", vpn=vpn).inc()

    def tlb_miss(self, core, pid, level, vpn, instr):
        if not self.options.tlb:
            return
        self._emit((ev.TLB_MISS, core, self._clock.get(core, 0), pid,
                    level, vpn, instr))
        self.registry.counter("tlb_misses", level=level, pid=pid).inc()
        if level != "L2":
            self.registry.counter("vpn_accesses", vpn=vpn).inc()

    def page_walk(self, core, pid, vpn, cycles, fault, levels):
        if not self.options.walks:
            return
        self._emit((ev.PAGE_WALK, core, self._clock.get(core, 0), pid,
                    vpn, cycles, fault, levels))
        self.registry.counter("walks", pid=pid).inc()
        self.registry.histogram("walk_cycles").observe(cycles)
        self.registry.counter("walk_level_reads",
                              outcome="pwc").inc(levels.count("p"))
        self.registry.counter("walk_level_reads",
                              outcome="memory").inc(levels.count("m"))

    def fault(self, core, pid, vpn, kind, cycles, pte_page_copied,
              invalidations):
        if not self.options.faults:
            return
        self._emit((ev.FAULT, core, self._clock.get(core, 0), pid,
                    vpn, kind, cycles, pte_page_copied, invalidations))
        self.registry.counter("faults", kind=kind, pid=pid).inc()
        self.registry.counter("fault_cycles", kind=kind, pid=pid).inc(cycles)
        if pte_page_copied:
            self.registry.counter("pte_page_copies", pid=pid).inc()
        if invalidations:
            self.registry.counter("fault_invalidations", pid=pid).inc(
                invalidations)

    def sched_switch(self, core, prev_pid, next_pid):
        if not self.options.sched:
            return
        self._emit((ev.SCHED_SWITCH, core, self._clock.get(core, 0),
                    prev_pid, prev_pid, next_pid))
        self.registry.counter("sched_switches", core=core).inc()

    def invalidation(self, core, pid, vpn, scope):
        if not self.options.invalidations:
            return
        self._emit((ev.INVALIDATION, core, self._clock.get(core, 0), pid,
                    vpn, scope))
        self.registry.counter("invalidations", scope=scope).inc()

    def process_spawn(self, core, pid, pcid, ccid, recycled):
        if not self.options.lifecycle:
            return
        self._emit((ev.PROCESS_SPAWN, core, self._clock.get(core, 0), pid,
                    pcid, ccid, recycled))
        self.registry.counter("process_spawns").inc()
        if recycled:
            self.registry.counter("pcid_recycles").inc()

    def process_exit(self, core, pid, pcid, ccid, invalidations):
        if not self.options.lifecycle:
            return
        self._emit((ev.PROCESS_EXIT, core, self._clock.get(core, 0), pid,
                    pcid, ccid, invalidations))
        self.registry.counter("process_exits").inc()
        if invalidations:
            self.registry.counter("exit_invalidations").inc(invalidations)

    def quantum(self, core, pid, start_cycle, end_cycle, instructions):
        if not self.options.sched:
            return
        self._emit((ev.QUANTUM, core, start_cycle, pid, end_cycle,
                    instructions))
        self.registry.histogram("quantum_instructions").observe(instructions)
        self.registry.counter("quantum_cycles", core=core).inc(
            end_cycle - start_cycle)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self):
        """The JSON-ready whole-run aggregate (``RunResult.obs``)."""
        snap = {
            "options": dataclasses.asdict(self.options),
            "events_emitted": self.emitted,
            "events_kept": len(self.events),
            "events_dropped": self.dropped,
            "metrics": self.registry.snapshot(),
        }
        if self.sink is not None:
            snap["events_streamed"] = self.streamed
            snap["sink"] = self.sink.snapshot()
        return snap


def replay_events(event_dicts, options=None):
    """Fold a streamed/exported event sequence back through a fresh
    tracer; returns that tracer (ring + registry populated).

    Replaying a sink file produced by a run with all event families on
    rebuilds the *exact* registry the live run had — the equivalence
    ``python -m repro.obs summarize`` relies on when pointed at a
    ``.jsonl``/``.gz``/``.zst`` event stream instead of a summary.
    """
    tracer = Tracer(options)
    for data in event_dicts:
        etype = ev.CODES[data["event"]]
        core, cycle, pid = data["core"], data["cycle"], data["pid"]
        tracer.tick(core, cycle)
        if etype == ev.TLB_HIT:
            tracer.tlb_hit(core, pid, data["level"], data["vpn"],
                           data["provenance"] == ev.PROVENANCE_SHARED)
        elif etype == ev.TLB_MISS:
            tracer.tlb_miss(core, pid, data["level"], data["vpn"],
                            data["instr"])
        elif etype == ev.PAGE_WALK:
            tracer.page_walk(core, pid, data["vpn"], data["cycles"],
                             data["fault"], data["levels"])
        elif etype == ev.FAULT:
            tracer.fault(core, pid, data["vpn"], data["kind"],
                         data["cycles"], data["pte_page_copied"],
                         data["invalidations"])
        elif etype == ev.SCHED_SWITCH:
            tracer.sched_switch(core, data["prev_pid"], data["next_pid"])
        elif etype == ev.INVALIDATION:
            tracer.invalidation(core, pid, data["vpn"], data["scope"])
        elif etype == ev.QUANTUM:
            tracer.quantum(core, pid, cycle, data["end_cycle"],
                           data["instructions"])
        elif etype == ev.PROCESS_SPAWN:
            tracer.process_spawn(core, pid, data["pcid"], data["ccid"],
                                 data["recycled"])
        elif etype == ev.PROCESS_EXIT:
            tracer.process_exit(core, pid, data["pcid"], data["ccid"],
                                data["invalidations"])
    return tracer
