"""The event tracer: a bounded ring of typed events + online metrics.

Tracing is configured through ``SimConfig(trace=...)`` exactly like the
translation sanitizer: ``None``/``False`` (the default) disables it and
the simulator leaves every ``tracer`` attribute ``None``, so the hot
path pays only an ``is not None`` test — no calls, no allocations. Any
truthy value enables it: ``True`` for defaults, a :class:`TraceOptions`
(or its field dict, as rehydrated from a cache entry) to tune the ring
size or mute event families.

The ring is a ``deque(maxlen=...)``: long runs keep the freshest events
(the interesting tail) while the registry — which every event is folded
into as it is emitted — keeps exact whole-run aggregates. That is why
``summarize`` can cross-check the :class:`~repro.sim.stats.MMUStats`
counters even when the ring has wrapped.
"""

import collections
import dataclasses

from repro.obs import events as ev
from repro.obs.metrics import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class TraceOptions:
    """What to record; all families default on."""

    #: Ring capacity in events; older events are dropped (the registry
    #: still aggregates them).
    buffer_size: int = 1 << 16
    tlb: bool = True
    walks: bool = True
    faults: bool = True
    sched: bool = True
    invalidations: bool = True
    lifecycle: bool = True


def resolve_trace_options(trace):
    """``SimConfig.trace`` value -> :class:`TraceOptions` or None."""
    if not trace:
        return None
    if trace is True:
        return TraceOptions()
    if isinstance(trace, TraceOptions):
        return trace
    if isinstance(trace, dict):
        return TraceOptions(**trace)
    raise TypeError("SimConfig.trace must be None, True, TraceOptions, "
                    "or a TraceOptions field dict; got %r" % (trace,))


class Tracer:
    """Collects typed events and aggregates them into a registry.

    Emit methods take the emitting core and the acting process's pid;
    timestamps come from the per-core clock the simulator advances with
    :meth:`tick` (core-local cycles, the only time the simulation has).
    """

    def __init__(self, options=None):
        self.options = options or TraceOptions()
        self.events = collections.deque(maxlen=self.options.buffer_size)
        self.registry = MetricsRegistry()
        self.emitted = 0
        self._clock = {}

    # -- clock -------------------------------------------------------------

    def tick(self, core, cycle):
        self._clock[core] = cycle

    def clock(self, core):
        return self._clock.get(core, 0)

    @property
    def dropped(self):
        return self.emitted - len(self.events)

    def reset(self):
        """Forget everything (the simulator's ``reset_measurement``:
        warm-up events must not leak into the measured snapshot)."""
        self.events.clear()
        self.registry = MetricsRegistry()
        self.emitted = 0
        self._clock = {}

    def _emit(self, event):
        self.events.append(event)
        self.emitted += 1

    # -- emitters ----------------------------------------------------------

    def tlb_hit(self, core, pid, level, vpn, shared):
        if not self.options.tlb:
            return
        provenance = ev.PROVENANCE_SHARED if shared else ev.PROVENANCE_PRIVATE
        self._emit((ev.TLB_HIT, core, self._clock.get(core, 0), pid,
                    level, vpn, provenance))
        self.registry.counter("tlb_hits", level=level,
                              provenance=provenance, pid=pid).inc()
        if level != "L2":
            # One L1-level event per access (hit or miss), so this is the
            # per-VPN access heat behind ``summarize --top``.
            self.registry.counter("vpn_accesses", vpn=vpn).inc()

    def tlb_miss(self, core, pid, level, vpn, instr):
        if not self.options.tlb:
            return
        self._emit((ev.TLB_MISS, core, self._clock.get(core, 0), pid,
                    level, vpn, instr))
        self.registry.counter("tlb_misses", level=level, pid=pid).inc()
        if level != "L2":
            self.registry.counter("vpn_accesses", vpn=vpn).inc()

    def page_walk(self, core, pid, vpn, cycles, fault, levels):
        if not self.options.walks:
            return
        self._emit((ev.PAGE_WALK, core, self._clock.get(core, 0), pid,
                    vpn, cycles, fault, levels))
        self.registry.counter("walks", pid=pid).inc()
        self.registry.histogram("walk_cycles").observe(cycles)
        self.registry.counter("walk_level_reads",
                              outcome="pwc").inc(levels.count("p"))
        self.registry.counter("walk_level_reads",
                              outcome="memory").inc(levels.count("m"))

    def fault(self, core, pid, vpn, kind, cycles, pte_page_copied,
              invalidations):
        if not self.options.faults:
            return
        self._emit((ev.FAULT, core, self._clock.get(core, 0), pid,
                    vpn, kind, cycles, pte_page_copied, invalidations))
        self.registry.counter("faults", kind=kind, pid=pid).inc()
        self.registry.counter("fault_cycles", kind=kind, pid=pid).inc(cycles)
        if pte_page_copied:
            self.registry.counter("pte_page_copies", pid=pid).inc()
        if invalidations:
            self.registry.counter("fault_invalidations", pid=pid).inc(
                invalidations)

    def sched_switch(self, core, prev_pid, next_pid):
        if not self.options.sched:
            return
        self._emit((ev.SCHED_SWITCH, core, self._clock.get(core, 0),
                    prev_pid, prev_pid, next_pid))
        self.registry.counter("sched_switches", core=core).inc()

    def invalidation(self, core, pid, vpn, scope):
        if not self.options.invalidations:
            return
        self._emit((ev.INVALIDATION, core, self._clock.get(core, 0), pid,
                    vpn, scope))
        self.registry.counter("invalidations", scope=scope).inc()

    def process_spawn(self, core, pid, pcid, ccid, recycled):
        if not self.options.lifecycle:
            return
        self._emit((ev.PROCESS_SPAWN, core, self._clock.get(core, 0), pid,
                    pcid, ccid, recycled))
        self.registry.counter("process_spawns").inc()
        if recycled:
            self.registry.counter("pcid_recycles").inc()

    def process_exit(self, core, pid, pcid, ccid, invalidations):
        if not self.options.lifecycle:
            return
        self._emit((ev.PROCESS_EXIT, core, self._clock.get(core, 0), pid,
                    pcid, ccid, invalidations))
        self.registry.counter("process_exits").inc()
        if invalidations:
            self.registry.counter("exit_invalidations").inc(invalidations)

    def quantum(self, core, pid, start_cycle, end_cycle, instructions):
        if not self.options.sched:
            return
        self._emit((ev.QUANTUM, core, start_cycle, pid, end_cycle,
                    instructions))
        self.registry.histogram("quantum_instructions").observe(instructions)
        self.registry.counter("quantum_cycles", core=core).inc(
            end_cycle - start_cycle)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self):
        """The JSON-ready whole-run aggregate (``RunResult.obs``)."""
        return {
            "options": dataclasses.asdict(self.options),
            "events_emitted": self.emitted,
            "events_kept": len(self.events),
            "events_dropped": self.dropped,
            "metrics": self.registry.snapshot(),
        }
