"""Wall-clock phase profiler for the host-side harness.

This is the one place in the stack where reading the wall clock is
correct: the *harness* (runner, report, benchmarks) wants to know where
real seconds go — trace generation, warm-up, simulation, reporting — as
opposed to the simulation, whose only time is cycles (BF202 enforces
that split). Phases nest via ``with profiler.span("warmup"):`` and the
profiler keeps per-phase count/total/min/max plus free-form counters
(cache hits, requests executed) so ``--jobs N`` runs report the same
shape as sequential ones.
"""

import contextlib
import time


class Span:
    """Handle yielded by :meth:`PhaseProfiler.span`; ``seconds`` is set
    when the block exits (callers use it for progress lines)."""

    __slots__ = ("name", "seconds")

    def __init__(self, name):
        self.name = name
        self.seconds = None


class PhaseProfiler:
    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.phases = {}   # name -> [count, total, min, max]
        self._order = []   # first-seen phase order, for stable reports
        self.counters = {}

    @contextlib.contextmanager
    def span(self, name):
        handle = Span(name)
        start = self.clock()
        try:
            yield handle
        finally:
            handle.seconds = self.clock() - start
            self.add(name, handle.seconds)

    def add(self, name, seconds):
        """Record an externally timed duration under ``name``."""
        slot = self.phases.get(name)
        if slot is None:
            self.phases[name] = [1, seconds, seconds, seconds]
            self._order.append(name)
        else:
            slot[0] += 1
            slot[1] += seconds
            slot[2] = min(slot[2], seconds)
            slot[3] = max(slot[3], seconds)

    def count(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def as_dict(self):
        return {
            "phases": {name: {"count": c, "seconds": t, "min": lo, "max": hi}
                       for name, (c, t, lo, hi) in self.phases.items()},
            "counters": dict(self.counters),
        }

    def summary_line(self):
        """One-line digest for progress streams."""
        parts = ["%s %.1fs/%d" % (name, self.phases[name][1],
                                  self.phases[name][0])
                 for name in self._order]
        parts += ["%s=%d" % (name, self.counters[name])
                  for name in sorted(self.counters)]
        return "phases: " + ("  ".join(parts) if parts else "(none)")

    def format_summary(self, title="phase profile"):
        lines = [title]
        width = max([len(n) for n in self._order] + [5])
        for name in self._order:
            count, total, lo, hi = self.phases[name]
            lines.append("  %-*s  %8.2fs  x%-4d  min %6.2fs  max %6.2fs"
                         % (width, name, total, count, lo, hi))
        if self.counters:
            lines.append("  " + "  ".join(
                "%s=%d" % (name, self.counters[name])
                for name in sorted(self.counters)))
        return "\n".join(lines)
