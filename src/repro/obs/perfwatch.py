"""Perf-regression watchdog over benchmark trajectory files.

``python -m repro.obs perfwatch FRESH [--baseline COMMITTED]`` compares
a freshly measured trajectory against the committed one tier by tier
and exits nonzero when any watched metric falls below its per-tier
tolerance floor. The default watched metrics are the machine-normalized
speedup *ratios* (batch/reference and fastpath/reference) — ratios
transfer across machines far better than absolute access rates, which
is what makes a CI runner's fresh measurement comparable to a
trajectory recorded on a dev box at all. Tolerances are therefore
per-tier: the tiny smoke tier is noise-dominated and gets a wide band,
the medium and batch tiers are long enough to hold a tighter one.

The watchdog is not married to BENCH_hotpath.json: any file with a
``tiers`` table works, and the watched-ratio list is configurable per
invocation — ``python -m repro.obs perfwatch --bench BENCH_serve.json
--ratio warm_speedup`` gates the serving daemon's amortization
trajectory on its own ratio.

A tier present in only one file is reported (``new`` / ``skipped``) but
never fails the watch — the smoke harness does not run the medium tier,
and that must not read as a regression. A fresh tier whose
``identical`` flag is False fails unconditionally: bit-identity of the
fast engines is the one metric with zero tolerance.
"""

import json
import os

#: Regression floor per tier, as a fraction of the baseline value
#: (0.35 = fail below 65% of baseline). Overridable per invocation.
DEFAULT_TOLERANCES = {"smoke": 0.35, "medium": 0.15, "batch": 0.20}
DEFAULT_TOLERANCE = 0.15

#: Default tier-entry keys watched for regressions (higher is better).
WATCHED = ("speedup", "fastpath_speedup")


def repo_baseline_path(name="BENCH_hotpath.json"):
    """The committed trajectory ``name`` at the repository root
    (resolved relative to this file, so it works from any CWD)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.abspath(os.path.join(here, "..", "..", "..", name))


def load_trajectory(path):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise SystemExit("perfwatch: trajectory file not found: %s" % path)
    except json.JSONDecodeError as exc:
        raise SystemExit("perfwatch: %s is not valid JSON (%s)"
                         % (path, exc))
    if not isinstance(data.get("tiers"), dict):
        raise SystemExit("perfwatch: %s has no 'tiers' table" % path)
    return data


def compare(fresh, baseline, tolerances=None, default_tolerance=None,
            watched=None):
    """Diff two trajectory payloads; returns ``(rows, regressions)``.

    Each row is a dict with tier/metric/baseline/fresh/floor/status;
    ``regressions`` is the subset that should fail the watch.
    ``watched`` overrides the ratio list (default :data:`WATCHED`).
    """
    watched = tuple(watched) if watched else WATCHED
    tol = dict(DEFAULT_TOLERANCES)
    tol.update(tolerances or {})
    fallback = (DEFAULT_TOLERANCE if default_tolerance is None
                else default_tolerance)
    fresh_tiers = fresh.get("tiers", {})
    base_tiers = baseline.get("tiers", {})
    rows, regressions = [], []
    for tier in sorted(fresh_tiers):
        entry = fresh_tiers[tier]
        if entry.get("identical") is False:
            row = {"tier": tier, "metric": "identical", "baseline": True,
                   "fresh": False, "floor": True, "status": "regression"}
            rows.append(row)
            regressions.append(row)
        base = base_tiers.get(tier)
        if base is None:
            rows.append({"tier": tier, "metric": "-", "baseline": None,
                         "fresh": None, "floor": None, "status": "new"})
            continue
        band = tol.get(tier, fallback)
        for metric in watched:
            if metric not in entry or metric not in base:
                continue
            floor = base[metric] * (1.0 - band)
            if entry[metric] < floor:
                status = "regression"
            elif entry[metric] > base[metric] * (1.0 + band):
                status = "improved"
            else:
                status = "ok"
            row = {"tier": tier, "metric": metric,
                   "baseline": base[metric], "fresh": entry[metric],
                   "floor": floor, "status": status}
            rows.append(row)
            if status == "regression":
                regressions.append(row)
    for tier in sorted(set(base_tiers) - set(fresh_tiers)):
        rows.append({"tier": tier, "metric": "-", "baseline": None,
                     "fresh": None, "floor": None, "status": "skipped"})
    return rows, regressions


def format_report(rows, regressions):
    lines = ["%-8s %-18s %10s %10s %10s  %s"
             % ("tier", "metric", "baseline", "fresh", "floor", "status")]
    for row in rows:
        lines.append("%-8s %-18s %10s %10s %10s  %s"
                     % (row["tier"], row["metric"], _fmt(row["baseline"]),
                        _fmt(row["fresh"]), _fmt(row["floor"]),
                        row["status"]))
    if regressions:
        lines.append("")
        lines.append("PERF REGRESSION: %d watched metric(s) below the "
                     "tolerance floor" % len(regressions))
    else:
        lines.append("")
        lines.append("perfwatch: all watched metrics within tolerance")
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    return "%.3f" % value


def watch(fresh_path, baseline_path=None, tolerances=None,
          default_tolerance=None, watched=None):
    """Load, compare, print the report; returns the process exit code
    (0 clean, 1 regression). ``watched`` overrides the gated ratio
    list; the default baseline is the committed repo-root file with the
    same basename as ``fresh_path``."""
    if baseline_path is None:
        baseline_path = repo_baseline_path(
            os.path.basename(fresh_path) or "BENCH_hotpath.json")
    fresh = load_trajectory(fresh_path)
    baseline = load_trajectory(baseline_path)
    rows, regressions = compare(fresh, baseline, tolerances=tolerances,
                                default_tolerance=default_tolerance,
                                watched=watched)
    print("perfwatch: %s vs baseline %s" % (fresh_path, baseline_path))
    print(format_report(rows, regressions))
    return 1 if regressions else 0
