"""repro — a reproduction of *BabelFish: Fusing Address Translations for
Containers* (Skarlatos et al., ISCA 2020).

The package provides:

- :mod:`repro.hw` — caches, DRAM, TLBs, PWC, and a CACTI-style SRAM model
  (Table I / Table III substrate);
- :mod:`repro.kernel` — a Linux-like virtual memory kernel: page tables,
  page cache, fork/CoW, THP, scheduling;
- :mod:`repro.core` — BabelFish itself: CCID-tagged TLB sharing (Figure 8)
  and shared page tables with MaskPage-tracked CoW (Sections III-IV);
- :mod:`repro.sim` — the trace-driven multi-core simulator;
- :mod:`repro.containers` — a container engine and FaaS runtime;
- :mod:`repro.workloads` — the paper's workload models;
- :mod:`repro.experiments` — one harness per table/figure of Section VII.
"""

__version__ = "1.0.0"
