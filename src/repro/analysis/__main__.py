"""``python -m repro.analysis``: lint the repository.

With no paths, lints the ``repro`` package the module was imported from
plus a sibling ``tests/`` directory when present, so a bare invocation
covers the whole repo.

Exit codes: ``0`` clean; ``1`` findings (errors by default; any new
finding — warnings included — under ``--strict``); ``2`` usage errors.
A checked-in ``analysis-baseline.json`` (multiset of accepted findings,
line numbers ignored) is subtracted first; ``--write-baseline``
regenerates it, ``--sarif-out`` / ``--format sarif`` emit SARIF 2.1.0
for code-scanning upload.
"""

import argparse
import json
import pathlib
import sys

from repro.analysis import baseline as baseline_mod
from repro.analysis.lint.engine import LintEngine
from repro.analysis.lint.rules import rule_catalog
from repro.analysis.sarif import to_sarif

DEFAULT_BASELINE = "analysis-baseline.json"


def default_paths():
    import repro
    package = pathlib.Path(repro.__file__).resolve().parent
    paths = [package]
    tests = package.parent.parent / "tests"
    if tests.is_dir():
        paths.append(tests)
    return paths


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-aware lint: layering, determinism, "
                    "cycle-integrity, epoch-coverage, teardown-ordering, "
                    "and parallel-safety contracts.")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories (default: the repro "
                             "package and tests/)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="baseline file of accepted findings "
                             "(default: ./%s when present)"
                             % DEFAULT_BASELINE)
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="fail on any non-baselined finding, warnings "
                             "included")
    parser.add_argument("--sarif-out", type=pathlib.Path, default=None,
                        help="also write SARIF 2.1.0 to this file")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, description in rule_catalog():
            print("%s  %s" % (rule_id, description))
        return 0

    paths = args.paths or default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print("error: no such file or directory: %s" % p,
                  file=sys.stderr)
        return 2

    root = pathlib.Path.cwd()
    findings = LintEngine().lint_paths(paths)

    baseline_path = args.baseline or pathlib.Path(DEFAULT_BASELINE)
    if args.write_baseline:
        baseline_mod.write(baseline_path, findings, root)
        print("wrote %d finding%s to %s"
              % (len(findings), "" if len(findings) == 1 else "s",
                 baseline_path))
        return 0
    try:
        known = baseline_mod.load(baseline_path)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    fresh = baseline_mod.subtract(findings, known, root)
    baselined = len(findings) - len(fresh)

    sarif = None
    if args.sarif_out is not None or args.format == "sarif":
        sarif = to_sarif(fresh, root)
    if args.sarif_out is not None:
        args.sarif_out.write_text(json.dumps(sarif, indent=2) + "\n",
                                  encoding="utf-8")

    if args.format == "json":
        print(json.dumps({"count": len(fresh),
                          "baselined": baselined,
                          "findings": [f.as_dict() for f in fresh]},
                         indent=2))
    elif args.format == "sarif":
        print(json.dumps(sarif, indent=2))
    else:
        for finding in fresh:
            print(finding.format())
        summary = "%d finding%s" % (len(fresh),
                                    "" if len(fresh) == 1 else "s")
        if baselined:
            summary += " (%d baselined)" % baselined
        print(summary)

    if args.strict:
        return 1 if fresh else 0
    errors = [f for f in fresh if str(f.severity) == "error"]
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
