"""``python -m repro.analysis``: lint the repository.

Exits nonzero when findings remain. With no paths, lints the ``repro``
package the module was imported from plus a sibling ``tests/`` directory
when present, so a bare invocation covers the whole repo.
"""

import argparse
import json
import pathlib
import sys

from repro.analysis.lint.engine import LintEngine
from repro.analysis.lint.rules import rule_catalog


def default_paths():
    import repro
    package = pathlib.Path(repro.__file__).resolve().parent
    paths = [package]
    tests = package.parent.parent / "tests"
    if tests.is_dir():
        paths.append(tests)
    return paths


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-aware lint: layering, determinism, and "
                    "cycle-integrity contracts.")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories (default: the repro "
                             "package and tests/)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, description in rule_catalog():
            print("%s  %s" % (rule_id, description))
        return 0

    paths = args.paths or default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print("error: no such file or directory: %s" % p,
                  file=sys.stderr)
        return 2
    findings = LintEngine().lint_paths(paths)
    if args.format == "json":
        print(json.dumps({"count": len(findings),
                          "findings": [f.as_dict() for f in findings]},
                         indent=2))
    else:
        for finding in findings:
            print(finding.format())
        print("%d finding%s" % (len(findings),
                                "" if len(findings) == 1 else "s"))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
