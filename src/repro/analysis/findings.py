"""Structured findings shared by the lint engine and the CLI."""

import dataclasses
import enum


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self):
        return self.value


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str

    def format(self):
        return "%s:%d: %s %s: %s" % (
            self.path, self.line, self.severity, self.rule_id, self.message)

    def as_dict(self):
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
