"""Runtime translation-coherence sanitizer: a shadow MMU.

``audit_kernel`` checks the kernel's own bookkeeping (sharer counts,
refcounts, registries) but never sees the TLB side — exactly where
BabelFish's shared entries make staleness subtle. When enabled via
``SimConfig(sanitize=True)``, this sanitizer cross-checks every L1/L2 TLB
fill, hit, and invalidation in :mod:`repro.sim.mmu` against an independent
architectural walk of the kernel page tables (``proc.tables.walk`` — no
TLBs, no PWC, no timing). It catches:

- **stale entries**: a hit on a translation the tables no longer hold
  (munmap or invalidation missed a copy), or whose PPN changed (a CoW
  break that did not shoot the old entry down);
- **O-PC desync**: a fill whose Ownership/ORPC/PC-bitmask snapshot
  disagrees with the page-table and MaskPage state at fill time;
- **CCID leakage**: an entry tagged with one group hit or filled by a
  process of another;
- **invalidation leaks**: entries that survive an invalidation they were
  scoped to cover;
- **freed frames**: a hit or fill that resolves to a physical frame the
  kernel has freed and not reallocated (the container-churn bug class:
  a dead process's translations outliving its frames). Teardown paths
  report freed PPNs through ``kernel.on_frames_freed`` and the sanitizer
  quarantines them until the allocator hands them out again.

Checks run with the simulation's own objects but read-only; violations
are recorded (and optionally raised) as :class:`CoherenceViolation`.
"""

import dataclasses

from repro.core.mask_page import region_of
from repro.hw.types import PageSize
from repro.kernel.fault import InvalidationScope
from repro.kernel.page_table import PTE


class CoherenceError(AssertionError):
    """Raised in ``raise_on_violation`` mode, carrying the violation."""

    def __init__(self, violation):
        super().__init__(violation.format())
        self.violation = violation


@dataclasses.dataclass(frozen=True)
class CoherenceViolation:
    kind: str        # stale-entry | ppn-mismatch | size-mismatch |
                     # perm-mismatch | ccid-leak | opc-desync |
                     # invalidation-leak | freed-frame
    level: str       # L1D | L1I | L2 | L3
    vpn: int         # 4K group-space VPN the check ran at
    pid: int         # process on whose behalf the check ran (or entry owner)
    detail: str

    def format(self):
        return "[%s] %s at vpn=%#x pid=%s: %s" % (
            self.level, self.kind, self.vpn, self.pid, self.detail)


def _entry_vpn4k(entry):
    return entry.vpn << (entry.page_size.shift - PageSize.SIZE_4K.shift)


def _entry_covers(entry, vpn4k):
    base = _entry_vpn4k(entry)
    return base <= vpn4k < base + entry.page_size.base_pages


class TranslationSanitizer:
    """Cross-checks TLB state against the architectural page tables."""

    def __init__(self, kernel, config, raise_on_violation=False):
        self.kernel = kernel
        self.config = config
        self.raise_on_violation = raise_on_violation
        self.violations = []
        self.checks = 0
        #: Freed-and-not-yet-reallocated PPNs (fed by the kernel's
        #: teardown paths through ``kernel.on_frames_freed``).
        self._quarantine = set()

    # -- recording ---------------------------------------------------------

    def _record(self, kind, level, vpn, pid, detail):
        violation = CoherenceViolation(kind, level, vpn, pid, detail)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise CoherenceError(violation)
        return violation

    def report(self):
        return [v.format() for v in self.violations]

    def assert_clean(self):
        if self.violations:
            raise CoherenceError(self.violations[0])

    # -- architectural reference walk -------------------------------------

    @staticmethod
    def _walk_tables(proc, vpn_group):
        path = proc.tables.walk(vpn_group)
        _level, table, _index, entry = path[-1]
        if isinstance(entry, PTE) and entry.present:
            return entry, table
        return None, None

    def _arch_walk(self, proc, vpn_group):
        """(pte, leaf_table) via the software tables only — the reference
        the TLB state must agree with.

        The process's own tables take precedence: if they resolve, the TLB
        must agree with *them* (this is what catches a shared entry served
        to a process that holds a private copy). Under BabelFish TLB
        sharing a process can legitimately hit a group entry before its
        own tree has attached the range, so when the own walk faults the
        reference falls back to the live CCID-group members' tables.
        """
        pte, table = self._walk_tables(proc, vpn_group)
        if pte is not None or not self.config.shared_tlb_entries:
            return pte, table
        for member in self.kernel.processes.values():
            if member is proc or not member.alive \
                    or member.ccid != proc.ccid:
                continue
            pte, table = self._walk_tables(member, vpn_group)
            if pte is not None:
                return pte, table
        return None, None

    # -- freed-frame quarantine --------------------------------------------

    def quarantine_frames(self, ppns):
        """Teardown freed these PPNs: any TLB traffic resolving to one
        (while it stays free) is a use-after-free translation. Wired as
        ``kernel.on_frames_freed`` by the simulator."""
        self._quarantine.update(ppns)

    @staticmethod
    def _entry_frames(entry, vpn_group, site):
        """The PPNs a check must hold against quarantine. Coalesced
        spans map several frames: a hit resolves exactly one (the
        accessed page's slice), while a fill asserts the whole span."""
        if not entry.page_size.coalesced:
            return (entry.ppn,)
        if site == "hit":
            return (entry.ppn + (vpn_group & entry.page_size.base_mask),)
        return tuple(entry.ppn + off
                     for off in range(entry.page_size.base_pages))

    def _check_freed_frame(self, level, proc, entry, vpn_group, site):
        for ppn in self._entry_frames(entry, vpn_group, site):
            if ppn not in self._quarantine:
                continue
            if self.kernel.allocator.refcount(ppn) > 0:
                # Reallocated since it was freed: no longer quarantined. A
                # stale entry pointing here is caught by the walk-based
                # checks instead (ppn-mismatch / stale-entry).
                self._quarantine.discard(ppn)
                continue
            self._record(
                "freed-frame", level, vpn_group, proc.pid,
                "%s resolves to ppn=%#x, which teardown freed and the "
                "allocator has not reissued — a dead translation outlived "
                "its frame" % (site, ppn))

    # -- fill / hit checks -------------------------------------------------

    def check_hit(self, level, proc, entry, vpn_group):
        """A TLB hit served ``proc`` at ``vpn_group`` from ``entry``."""
        self.checks += 1
        self._check_freed_frame(level, proc, entry, vpn_group, "hit")
        pte, _table = self._arch_walk(proc, vpn_group)
        if pte is None:
            self._record(
                "stale-entry", level, vpn_group, proc.pid,
                "hit on %r but the architectural walk faults — the entry "
                "outlived its translation (missed invalidation after "
                "munmap/CoW?)" % (entry,))
            return
        resolved_ppn = entry.ppn
        expected_size = entry.page_size
        if entry.page_size.coalesced:
            # A span caches several contiguous 4K translations: the hit
            # resolves the accessed slice, and the tables must hold it
            # as a plain 4K pte_t.
            resolved_ppn += vpn_group & entry.page_size.base_mask
            expected_size = PageSize.SIZE_4K
        if resolved_ppn != pte.ppn:
            self._record(
                "ppn-mismatch", level, vpn_group, proc.pid,
                "hit returns ppn=%#x but the tables map ppn=%#x — stale "
                "entry after a CoW break or remap" % (resolved_ppn, pte.ppn))
        if expected_size is not pte.page_size:
            self._record(
                "size-mismatch", level, vpn_group, proc.pid,
                "entry page size %s but the tables hold %s"
                % (entry.page_size.name, pte.page_size.name))
        if entry.ccid != proc.ccid:
            self._record(
                "ccid-leak", level, vpn_group, proc.pid,
                "process in CCID group %d hit an entry tagged CCID %d"
                % (proc.ccid, entry.ccid))
        if entry.writable and not pte.writable:
            self._record(
                "perm-mismatch", level, vpn_group, proc.pid,
                "entry grants write but the pte_t is read-only — a "
                "write-protect (CoW arm) was not propagated")

    def check_fill(self, level, proc, entry, vpn_group):
        """``entry`` was just inserted for ``proc`` at ``vpn_group``."""
        self.checks += 1
        self._check_freed_frame(level, proc, entry, vpn_group, "fill")
        pte, table = self._arch_walk(proc, vpn_group)
        if pte is None:
            self._record(
                "stale-entry", level, vpn_group, proc.pid,
                "fill of %r without a present architectural pte_t" % (entry,))
            return
        resolved_ppn = entry.ppn
        if entry.page_size.coalesced:
            resolved_ppn += vpn_group & entry.page_size.base_mask
        if resolved_ppn != pte.ppn:
            self._record(
                "ppn-mismatch", level, vpn_group, proc.pid,
                "filled ppn=%#x but the tables map ppn=%#x"
                % (resolved_ppn, pte.ppn))
        if entry.ccid != proc.ccid:
            self._record(
                "ccid-leak", level, vpn_group, proc.pid,
                "fill tagged CCID %d on behalf of a CCID-%d process"
                % (entry.ccid, proc.ccid))
        if entry.page_size.coalesced:
            self._check_span_fill(level, proc, entry)
        if self.config.shared_tlb_entries and table is not None:
            self._check_opc(level, proc, entry, vpn_group, table)

    def _check_span_fill(self, level, proc, entry):
        """A coalesced fill asserts the whole aligned block: every
        covered 4K vpn must be present, 4K-mapped, and physically
        contiguous from the span base — re-derived from the tables, not
        from the policy's own block scan."""
        base = _entry_vpn4k(entry)
        for off in range(entry.page_size.base_pages):
            pte, _table = self._arch_walk(proc, base + off)
            if pte is None or pte.page_size is not PageSize.SIZE_4K \
                    or pte.ppn != entry.ppn + off:
                self._record(
                    "ppn-mismatch", level, base + off, proc.pid,
                    "coalesced span %r asserts ppn=%#x for member +%d "
                    "but the tables hold %r"
                    % (entry, entry.ppn + off, off, pte))

    def _check_opc(self, level, proc, entry, vpn_group, table):
        """O-PC snapshot vs the page-table/MaskPage state at fill time.

        The expected fields are re-derived from the policy against the
        leaf table the *independent* walk reached — so a fill that walked
        a stale table, or a ``make_entry`` that miswires the fields, or a
        MaskPage that desynced from the pmd_t ORPC bits, all disagree
        here. Only meaningful where O-PC is actually stored: the L2, and
        the L1 when it holds group-shared entries.
        """
        if level != "L2" and not self.config.share_l1_tlb:
            return
        o_bit, orpc, mask = self.kernel.policy.fill_info(proc, table,
                                                         vpn_group)
        # Figure 5b's storage convention: the bitmask is only loaded when
        # O is clear and ORPC set; otherwise the stored field is zero.
        stored_mask = mask if (not o_bit and orpc) else 0
        if bool(entry.o_bit) != bool(o_bit):
            self._record(
                "opc-desync", level, vpn_group, proc.pid,
                "entry O=%d but the policy derives O=%d from the leaf "
                "table (shared_key=%r, owned_by=%r)"
                % (entry.o_bit, o_bit, table.shared_key, table.owned_by))
        elif bool(entry.orpc) != bool(orpc):
            self._record(
                "opc-desync", level, vpn_group, proc.pid,
                "entry ORPC=%d but the pmd_t-level state says ORPC=%d"
                % (entry.orpc, orpc))
        elif entry.pc_mask != stored_mask:
            self._record(
                "opc-desync", level, vpn_group, proc.pid,
                "entry PC bitmask %#x but the MaskPage derives %#x"
                % (entry.pc_mask, stored_mask))

    # -- invalidation checks -----------------------------------------------

    def check_invalidation(self, mmu, proc, inv):
        """After ``mmu`` applied ``inv``: no matching entry may survive.

        The matching predicate is re-derived from the invalidation
        semantics (not from the MMU's own code), so a wrong set index, a
        bad page-size shift, or an overly narrow predicate in
        ``apply_invalidation`` shows up here.
        """
        self.checks += 1
        for name, multi in mmu.tlb_levels():
            for entry in multi.entries():
                if self._should_be_gone(name, mmu, proc, entry, inv):
                    self._record(
                        "invalidation-leak", name, inv.vpn,
                        getattr(proc, "pid", None),
                        "%r survived %s invalidation of vpn=%#x"
                        % (entry, inv.scope.value, inv.vpn))

    def _should_be_gone(self, level, mmu, proc, entry, inv):
        if inv.scope is InvalidationScope.PROCESS:
            if entry.pcid != inv.pcid:
                return False
            if _entry_covers(entry, inv.vpn):
                return True
            # Under ASLR-HW the L1 caches process-space VPNs.
            vpn_proc = mmu._to_proc_space(proc, inv.vpn)
            return vpn_proc is not None and _entry_covers(entry, vpn_proc)
        if inv.scope is InvalidationScope.SHARED_ENTRY:
            return (not entry.o_bit and entry.ccid == inv.ccid
                    and _entry_covers(entry, inv.vpn))
        if inv.scope is InvalidationScope.REGION_SHARED:
            return (not entry.o_bit and entry.ccid == inv.ccid
                    and region_of(_entry_vpn4k(entry)) == region_of(inv.vpn))
        if inv.scope is InvalidationScope.PCID_FLUSH:
            return entry.pcid == inv.pcid
        if inv.scope is InvalidationScope.CCID_SHARED:
            return not entry.o_bit and entry.ccid == inv.ccid
        return False

    # -- full-state scan ---------------------------------------------------

    def scan(self, mmu):
        """Sweep every live TLB entry on ``mmu`` against the tables.

        Called at end of run (and usable from tests at any point). Private
        (O=1) entries are checked against their inserting process; shared
        entries against any live member of their CCID group. Entries whose
        processes have all exited are skipped — with no possible requester
        they can never produce a wrong translation.
        """
        by_pid = {p.pid: p for p in self.kernel.processes.values() if p.alive}
        by_ccid = {}
        for p in by_pid.values():
            by_ccid.setdefault(p.ccid, p)
        for name, multi in mmu.tlb_levels():
            for entry in multi.entries():
                proc = by_pid.get(entry.inserted_by)
                if proc is None and not entry.o_bit:
                    proc = by_ccid.get(entry.ccid)
                if proc is None:
                    continue
                if entry.page_size.coalesced:
                    # Each covered 4K vpn must still resolve: a partial
                    # remap/unmap of the block has to have dropped the
                    # whole span.
                    base = _entry_vpn4k(entry)
                    for off in range(entry.page_size.base_pages):
                        self.check_hit(name, proc, entry, base + off)
                    continue
                vpn_group = self._group_vpn_for(name, mmu, proc, entry)
                if vpn_group is None:
                    continue
                self.check_hit(name, proc, entry, vpn_group)
        return self.violations

    def _group_vpn_for(self, level, mmu, proc, entry):
        """Group-space 4K VPN of an entry (L1 may cache proc-space VPNs)."""
        vpn4k = _entry_vpn4k(entry)
        if level in ("L2", "L3") or self.config.share_l1_tlb:
            return vpn4k
        # Per-process L1 under ASLR-HW: map back to group space.
        if proc.layout_proc is proc.layout_group:
            return vpn4k
        segment = proc.layout_proc.segment_of(vpn4k)
        if segment is None:
            return None
        offset = vpn4k - proc.layout_proc.base(segment)
        return proc.layout_group.base(segment) + offset
