"""Finding baselines: accepted debt the CLI subtracts before failing.

A baseline is a checked-in JSON file listing findings the repo has
decided to live with (ideally none — ours is empty, and the point of
``--strict`` is to keep it that way). Matching is a **multiset** over
``(rule, path, message)`` — line numbers are deliberately excluded so an
unrelated edit that shifts a baselined finding by a few lines does not
resurrect it, while a *second* instance of the same finding in the same
file still fails.
"""

import collections
import json
import pathlib

VERSION = 1


def normalize_path(path, root=None):
    """Repo-relative POSIX form of ``path`` (falls back to as-given)."""
    if root is not None:
        try:
            resolved = pathlib.Path(path).resolve()
            return resolved.relative_to(
                pathlib.Path(root).resolve()).as_posix()
        except (ValueError, OSError):
            pass
    return pathlib.PurePath(path).as_posix()


def identity(finding, root=None):
    """The baseline key for one finding: line numbers excluded."""
    return (finding.rule_id, normalize_path(finding.path, root),
            finding.message)


def load(path):
    """Load a baseline file into a Counter of identities.

    Missing file -> empty baseline. A malformed file raises ValueError:
    silently ignoring a corrupt baseline would un-baseline everything and
    fail CI with a misleading wall of findings.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return collections.Counter()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data["findings"]
        return collections.Counter(
            (e["rule"], e["path"], e["message"]) for e in entries)
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError("malformed baseline file %s: %s" % (path, exc))


def write(path, findings, root=None):
    """Rewrite ``path`` with the current findings as the new baseline."""
    keys = sorted(identity(f, root) for f in findings)
    entries = [{"rule": rule, "path": rel, "message": message}
               for rule, rel, message in keys]
    payload = {"version": VERSION, "findings": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def subtract(findings, known, root=None):
    """Findings not covered by the ``known`` Counter (multiset subtract)."""
    remaining = collections.Counter(known)
    fresh = []
    for finding in findings:
        key = identity(finding, root)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
