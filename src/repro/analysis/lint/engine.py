"""The lint engine: one AST pass, pluggable rules, suppression hygiene.

A rule subclasses :class:`LintRule` and defines ``visit_<NodeType>``
methods (same naming as :class:`ast.NodeVisitor`). The engine parses each
module once and dispatches every node to every interested rule, so adding
rules does not add parse passes. Rules that need whole-module dataflow
(CFG/dominator rules) instead define ``check_module(tree, ctx)``, which
the engine calls once per module after the visitor pass.

Rules report through :meth:`LintContext.report`; the engine drops
findings whose line carries a matching suppression comment::

    cycles = estimate / 2  # bfa: disable=BF301 -- justification here

``# bfa: disable`` with no rule list suppresses every rule on that line.
Suppressions are per-line by design: a waiver should sit next to the code
it excuses, with its justification after ``--``. Suppressions are parsed
from the token stream, so only real comments count — the same text inside
a docstring or string literal (say, in this module's own documentation)
is inert.

The engine itself emits three findings no rule class owns:

- ``BF000`` — the file does not parse (syntax error).
- ``BF001`` — an unused suppression: a ``# bfa: disable`` comment (or one
  rule id within it) that suppresses nothing. Warning severity;
  ``--strict`` fails on it. BF001 is deliberately unsuppressable —
  a bare ``# bfa: disable`` must not be able to excuse itself.
- ``BF002`` — the file cannot be read or parsed at all (non-UTF-8 bytes,
  null bytes): reported as a finding instead of crashing the run.
"""

import ast
import io
import pathlib
import re
import tokenize

from repro.analysis.findings import Finding, Severity

#: Per-line suppression: ``# bfa: disable=BF101,BF203 -- why`` or
#: ``# bfa: disable -- why``. Anchored: the directive must start the
#: comment, so prose that merely mentions the syntax never suppresses.
_SUPPRESS_RE = re.compile(
    r"^#\s*bfa:\s*disable(?:=(?P<rules>[A-Z0-9, ]+))?")

#: Packages that make up the simulated machine: code here runs inside the
#: simulation's notion of time and must stay deterministic and integral.
SIM_PACKAGES = frozenset(
    {"hw", "core", "kernel", "sim", "workloads", "containers"})


class ModuleInfo:
    """What rules know about the module under analysis."""

    def __init__(self, path, package=None, is_test=None):
        self.path = str(path)
        parts = pathlib.PurePath(self.path).parts
        if package is None:
            package = ""
            if "repro" in parts:
                after = parts[parts.index("repro") + 1:]
                # repro/<pkg>/mod.py -> <pkg>; repro/mod.py -> "" (top level)
                package = after[0] if len(after) > 1 else ""
        self.package = package
        name = parts[-1] if parts else self.path
        if is_test is None:
            is_test = ("tests" in parts or name.startswith("test_")
                       or name == "conftest.py")
        self.is_test = is_test

    @property
    def in_sim_path(self):
        return self.package in SIM_PACKAGES


class LintContext:
    """Handed to rules: module info plus the ``report`` sink."""

    def __init__(self, module, sink):
        self.module = module
        self._sink = sink
        self._rule = None  # set by the engine around each dispatch

    def report(self, node, message, rule=None):
        rule = rule or self._rule
        self._sink(Finding(rule.rule_id, rule.severity, self.module.path,
                           getattr(node, "lineno", 0), message))


class LintRule:
    """Base class for rules. Subclasses set ``rule_id``/``description`` and
    define ``visit_<NodeType>`` methods and/or ``check_module(tree, ctx)``;
    ``begin_module`` resets any per-module state."""

    rule_id = None
    severity = Severity.ERROR
    description = ""

    def applies_to(self, module):
        """Whether this rule runs on ``module`` at all."""
        return not module.is_test

    def begin_module(self, module):
        pass


def _parse_suppressions(source):
    """Map line number -> set of suppressed rule ids (empty set = all).

    Token-based: only COMMENT tokens are considered, so suppression-shaped
    text inside strings and docstrings does not register.
    """
    suppressed = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.match(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                suppressed[tok.start[0]] = set()
            else:
                suppressed[tok.start[0]] = {r.strip()
                                            for r in rules.split(",")
                                            if r.strip()}
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file that does not tokenize already earns BF000/BF002; its
        # suppressions (if any) are moot.
        pass
    return suppressed


class LintEngine:
    def __init__(self, rules=None):
        if rules is None:
            from repro.analysis.lint.rules import all_rules
            rules = all_rules()
        self.rules = list(rules)

    # -- single module -----------------------------------------------------

    def lint_source(self, source, path="<string>", package=None, is_test=None):
        """Lint one module's source text; returns a list of findings."""
        module = ModuleInfo(path, package=package, is_test=is_test)
        try:
            tree = ast.parse(source, filename=module.path)
        except SyntaxError as exc:
            # Null bytes raise ValueError on 3.9-3.11 but SyntaxError on
            # 3.12+: classify them as BF002 (unparseable input) on both.
            if "null byte" in (exc.msg or ""):
                return [Finding("BF002", Severity.ERROR, module.path, 0,
                                "unparseable source: %s" % exc.msg)]
            return [Finding("BF000", Severity.ERROR, module.path,
                            exc.lineno or 0, "syntax error: %s" % exc.msg)]
        except ValueError as exc:
            return [Finding("BF002", Severity.ERROR, module.path, 0,
                            "unparseable source: %s" % exc)]
        findings = []
        context = LintContext(module, findings.append)
        active = []
        for rule in self.rules:
            if rule.applies_to(module):
                rule.begin_module(module)
                active.append(rule)
        if active:
            self._dispatch(tree, active, context)
            self._module_checks(tree, active, context)
        return self._apply_suppressions(findings, source, module)

    def _dispatch(self, tree, rules, context):
        # Bind each rule's visitor methods by node-type name once, then
        # drive a single ast.walk over the module.
        handlers = {}
        for rule in rules:
            for name in dir(rule):
                if not name.startswith("visit_"):
                    continue
                handlers.setdefault(name[len("visit_"):], []).append(
                    (rule, getattr(rule, name)))
        for node in ast.walk(tree):
            for rule, handler in handlers.get(type(node).__name__, ()):
                context._rule = rule
                handler(node, context)
        context._rule = None

    def _module_checks(self, tree, rules, context):
        # Whole-module (CFG/dataflow) rules run after the visitor pass.
        for rule in rules:
            check = getattr(rule, "check_module", None)
            if check is None:
                continue
            context._rule = rule
            check(tree, context)
        context._rule = None

    def _apply_suppressions(self, findings, source, module):
        """Filter suppressed findings; flag suppressions that earn nothing.

        Usage is tracked per rule id: ``# bfa: disable=BF101,BF301`` with
        only a BF101 finding on the line leaves the BF301 half stale and
        reported as BF001. BF001 itself cannot be suppressed.
        """
        suppressed = _parse_suppressions(source)
        used = {}  # lineno -> rule ids this suppression actually absorbed
        kept = []
        for finding in findings:
            rules = suppressed.get(finding.line)
            if rules is not None and (not rules
                                      or finding.rule_id in rules):
                used.setdefault(finding.line, set()).add(finding.rule_id)
            else:
                kept.append(finding)
        for lineno in sorted(suppressed):
            rules = suppressed[lineno]
            absorbed = used.get(lineno, set())
            if not rules:
                if not absorbed:
                    kept.append(Finding(
                        "BF001", Severity.WARNING, module.path, lineno,
                        "unused suppression: '# bfa: disable' absorbs no "
                        "finding on this line — remove it"))
                continue
            for rule_id in sorted(rules - absorbed):
                kept.append(Finding(
                    "BF001", Severity.WARNING, module.path, lineno,
                    "unused suppression: no %s finding on this line — "
                    "drop %s from the disable list" % (rule_id, rule_id)))
        return sorted(kept, key=lambda f: (f.line, f.rule_id))

    # -- trees -------------------------------------------------------------

    def lint_file(self, path):
        path = pathlib.Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError) as exc:
            return [Finding("BF002", Severity.ERROR, str(path), 0,
                            "unreadable file: %s" % exc)]
        return self.lint_source(source, str(path))

    def lint_paths(self, paths):
        """Lint files and/or directory trees; returns sorted findings."""
        findings = []
        for path in paths:
            path = pathlib.Path(path)
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                findings.extend(self.lint_file(file))
        return sorted(findings, key=lambda f: (f.path, f.line, f.rule_id))
