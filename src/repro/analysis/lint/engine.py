"""The lint engine: one AST pass, pluggable visitor rules, suppression.

A rule subclasses :class:`LintRule` and defines ``visit_<NodeType>``
methods (same naming as :class:`ast.NodeVisitor`). The engine parses each
module once and dispatches every node to every interested rule, so adding
rules does not add parse passes. Rules report through
:meth:`LintContext.report`; the engine drops findings whose line carries a
matching suppression comment::

    cycles = estimate / 2  # bfa: disable=BF301 -- justification here

``# bfa: disable`` with no rule list suppresses every rule on that line.
Suppressions are per-line by design: a waiver should sit next to the code
it excuses, with its justification after ``--``.
"""

import ast
import pathlib
import re

from repro.analysis.findings import Finding, Severity

#: Per-line suppression: ``# bfa: disable=BF101,BF203 -- why`` or
#: ``# bfa: disable -- why``.
_SUPPRESS_RE = re.compile(
    r"#\s*bfa:\s*disable(?:=(?P<rules>[A-Z0-9, ]+))?")

#: Packages that make up the simulated machine: code here runs inside the
#: simulation's notion of time and must stay deterministic and integral.
SIM_PACKAGES = frozenset(
    {"hw", "core", "kernel", "sim", "workloads", "containers"})


class ModuleInfo:
    """What rules know about the module under analysis."""

    def __init__(self, path, package=None, is_test=None):
        self.path = str(path)
        parts = pathlib.PurePath(self.path).parts
        if package is None:
            package = ""
            if "repro" in parts:
                after = parts[parts.index("repro") + 1:]
                # repro/<pkg>/mod.py -> <pkg>; repro/mod.py -> "" (top level)
                package = after[0] if len(after) > 1 else ""
        self.package = package
        name = parts[-1] if parts else self.path
        if is_test is None:
            is_test = ("tests" in parts or name.startswith("test_")
                       or name == "conftest.py")
        self.is_test = is_test

    @property
    def in_sim_path(self):
        return self.package in SIM_PACKAGES


class LintContext:
    """Handed to rules: module info plus the ``report`` sink."""

    def __init__(self, module, sink):
        self.module = module
        self._sink = sink
        self._rule = None  # set by the engine around each dispatch

    def report(self, node, message, rule=None):
        rule = rule or self._rule
        self._sink(Finding(rule.rule_id, rule.severity, self.module.path,
                           getattr(node, "lineno", 0), message))


class LintRule:
    """Base class for rules. Subclasses set ``rule_id``/``description`` and
    define ``visit_<NodeType>`` methods; ``begin_module`` resets any
    per-module state."""

    rule_id = None
    severity = Severity.ERROR
    description = ""

    def applies_to(self, module):
        """Whether this rule runs on ``module`` at all."""
        return not module.is_test

    def begin_module(self, module):
        pass


def _parse_suppressions(source):
    """Map line number -> set of suppressed rule ids (empty set = all)."""
    suppressed = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressed[lineno] = set()
        else:
            suppressed[lineno] = {r.strip() for r in rules.split(",")
                                  if r.strip()}
    return suppressed


class LintEngine:
    def __init__(self, rules=None):
        if rules is None:
            from repro.analysis.lint.rules import all_rules
            rules = all_rules()
        self.rules = list(rules)

    # -- single module -----------------------------------------------------

    def lint_source(self, source, path="<string>", package=None, is_test=None):
        """Lint one module's source text; returns a list of findings."""
        module = ModuleInfo(path, package=package, is_test=is_test)
        try:
            tree = ast.parse(source, filename=module.path)
        except SyntaxError as exc:
            return [Finding("BF000", Severity.ERROR, module.path,
                            exc.lineno or 0, "syntax error: %s" % exc.msg)]
        findings = []
        context = LintContext(module, findings.append)
        active = []
        for rule in self.rules:
            if rule.applies_to(module):
                rule.begin_module(module)
                active.append(rule)
        if active:
            self._dispatch(tree, active, context)
        suppressed = _parse_suppressions(source)
        return [f for f in findings if not self._is_suppressed(f, suppressed)]

    def _dispatch(self, tree, rules, context):
        # Bind each rule's visitor methods by node-type name once, then
        # drive a single ast.walk over the module.
        handlers = {}
        for rule in rules:
            for name in dir(rule):
                if not name.startswith("visit_"):
                    continue
                handlers.setdefault(name[len("visit_"):], []).append(
                    (rule, getattr(rule, name)))
        for node in ast.walk(tree):
            for rule, handler in handlers.get(type(node).__name__, ()):
                context._rule = rule
                handler(node, context)
        context._rule = None

    @staticmethod
    def _is_suppressed(finding, suppressed):
        rules = suppressed.get(finding.line)
        if rules is None:
            return False
        return not rules or finding.rule_id in rules

    # -- trees -------------------------------------------------------------

    def lint_file(self, path):
        path = pathlib.Path(path)
        return self.lint_source(path.read_text(encoding="utf-8"), str(path))

    def lint_paths(self, paths):
        """Lint files and/or directory trees; returns sorted findings."""
        findings = []
        for path in paths:
            path = pathlib.Path(path)
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                findings.extend(self.lint_file(file))
        return sorted(findings, key=lambda f: (f.path, f.line, f.rule_id))
