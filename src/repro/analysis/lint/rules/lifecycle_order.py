"""BF501: teardown ordering — shootdowns before frame frees (``kernel/``).

All three PR 5 churn bugs were the same shape: a teardown path released
a frame (or a PCID) while some TLB could still translate through it.
The fix was an ordering discipline, documented in ``Kernel.exit_process``:
every invalidation the teardown owes (PCID flush, O-PC reclamation,
group-shared flush) goes out through ``invalidation_sink`` *before* a
single frame is decref'd, so there is no window in which a freed — and
possibly recycled — frame is still reachable through a stale entry.

This rule pins that discipline with the CFG. Within ``kernel/``
functions that both record invalidations and free frames, every free
must be **dominated** by an invalidation event:

- invalidation events: calls to ``invalidation_sink(...)`` /
  ``_issue_invalidations(...)``, and ``invalidations.append(
  TLBInvalidation(...))`` / ``.extend`` with a ``TLBInvalidation``
  argument (paths like ``munmap`` that batch invalidations for the
  caller to apply — recording the shootdown *before* the free keeps the
  batch complete even if the walk stops early);
- free events: ``allocator.decref(...)`` calls and ``_teardown(...)``
  (which decrefs recursively).

Functions with frees but no invalidation machinery (``_teardown``
itself, the fault handlers) are out of scope: whether an invalidation
is *required* is a semantic question the runtime sanitizer answers;
this rule checks that, where both appear, the order is provably right
on every path.
"""

import ast

from repro.analysis.lint.cfg import FunctionCFG, ModuleIndex
from repro.analysis.lint.engine import LintRule
from repro.analysis.lint.rules.epochs import _own_calls

#: Call targets that deliver invalidations to the cores.
_SINK_ATTRS = frozenset({"invalidation_sink", "_issue_invalidations"})

#: Calls that release frames (directly or recursively).
_FREE_ATTRS = frozenset({"decref", "_teardown"})


def _constructs_invalidation(node):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name == "TLBInvalidation":
                return True
    return False


def _classify(stmt):
    """(is_invalidation_event, is_free_event) for one statement."""
    inval = free = False
    for call in _own_calls(stmt):
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _SINK_ATTRS:
            inval = True
        elif func.attr in ("append", "extend") \
                and any(_constructs_invalidation(arg) for arg in call.args):
            inval = True
        elif func.attr in _FREE_ATTRS:
            free = True
    return inval, free


class TeardownOrderRule(LintRule):
    rule_id = "BF501"
    description = ("kernel/ teardown ordering: TLB invalidations "
                   "(invalidation_sink / recorded shootdowns) must dominate "
                   "frame decref/_teardown on every path")

    def applies_to(self, module):
        return not module.is_test and module.package == "kernel"

    def check_module(self, tree, ctx):
        index = ModuleIndex(tree)
        for func, cls in index.iter_functions():
            self._check_function(func, cls, ctx)

    def _check_function(self, func, cls, ctx):
        cfg = FunctionCFG(func)
        invals, frees = [], []
        for stmt in cfg.statements():
            inval, free = _classify(stmt)
            if inval:
                invals.append(stmt)
            if free:
                frees.append(stmt)
        if not invals or not frees:
            return
        owner = "%s.%s" % (cls.name, func.name) if cls is not None \
            else func.name
        for free in frees:
            if any(cfg.dominates(inval, free) for inval in invals):
                continue
            ctx.report(free,
                       "frame free in %s() is not dominated by an "
                       "invalidation: a path reaches this decref/_teardown "
                       "before any shootdown is recorded or issued, leaving "
                       "a window where a stale TLB entry maps a freed frame"
                       % owner)
