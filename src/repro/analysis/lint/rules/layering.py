"""BF101: layering contracts between the ``repro`` packages.

The simulator is a strict stack. ``hw/`` models timing-free hardware
structures and must know nothing about the kernel or the simulator driving
it; ``core/`` (the BabelFish mechanisms) may build on ``hw/`` and
``kernel/`` but never on ``sim/``; ``workloads/`` generate traces and must
not reach into ``hw/`` internals. ``obs/`` sits at the bottom of the DAG
— pure instrumentation that may import nothing from ``repro`` — and only
``sim/`` may import it (lower layers receive an injected ``tracer``
attribute instead). Violations are how cross-layer shortcuts (a TLB
peeking at kernel state, a workload tuned to a TLB geometry) sneak in
and silently couple results to implementation details.
"""

from repro.analysis.lint.engine import LintRule

#: package -> repro packages it may import (itself is always allowed).
#: Packages absent from the table (e.g. ``experiments``, top-level
#: modules) are unconstrained.
ALLOWED_IMPORTS = {
    "obs": frozenset(),
    "hw": frozenset(),
    "kernel": frozenset({"hw"}),
    "core": frozenset({"hw", "kernel"}),
    "analysis": frozenset({"hw", "kernel", "core"}),
    "sim": frozenset({"hw", "kernel", "core", "analysis", "obs"}),
    "workloads": frozenset({"kernel", "core", "containers"}),
    "containers": frozenset({"hw", "kernel", "core"}),
    #: The serving daemon sits above the experiment runner: it may drive
    #: runs and read progress/stats, but never reach below ``sim/``.
    "serve": frozenset({"experiments", "obs", "sim", "workloads"}),
}


class LayeringRule(LintRule):
    rule_id = "BF101"
    description = ("layering contract: this package may not import the "
                   "named repro package")

    def applies_to(self, module):
        return not module.is_test and module.package in ALLOWED_IMPORTS

    def begin_module(self, module):
        self._allowed = ALLOWED_IMPORTS[module.package] | {module.package}

    def _check(self, node, target, ctx):
        parts = target.split(".")
        if len(parts) < 2 or parts[0] != "repro":
            return
        imported = parts[1]
        if imported not in self._allowed:
            ctx.report(node, "%s/ may not import repro.%s (allowed: %s)"
                       % (ctx.module.package, imported,
                          ", ".join(sorted(self._allowed))))

    def visit_Import(self, node, ctx):
        for alias in node.names:
            self._check(node, alias.name, ctx)

    def visit_ImportFrom(self, node, ctx):
        if node.level or not node.module:
            return  # relative imports stay within the package
        self._check(node, node.module, ctx)
