"""BF301/BF302: cycle-integrity contracts.

- BF301: cycle counters are integers. A float sneaking into a ``cycles``
  variable (true division, a float literal) rounds differently across
  platforms and silently shifts every downstream number. Use ``//`` or
  wrap in ``int(...)``/``round(...)``.
- BF302: no bare ``assert`` in non-test ``src/`` code: ``python -O``
  strips asserts, so an invariant guarded only by ``assert`` silently
  stops being checked in optimized runs. Raise a real exception.
"""

import ast

from repro.analysis.lint.engine import LintRule

#: Calls that launder a float back into an int, ending the search.
_INT_WRAPPERS = frozenset({"int", "round", "len", "floor", "ceil"})


def _float_taint(node):
    """First sub-node that would make this expression a float, or None.

    Descends the expression tree but stops at calls to int()/round()/…,
    whose result is integral regardless of what is inside.
    """
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name in _INT_WRAPPERS:
            return None
        for child in list(node.args) + [kw.value for kw in node.keywords]:
            taint = _float_taint(child)
            if taint is not None:
                return taint
        return None
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return node
        return _float_taint(node.left) or _float_taint(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node
    if isinstance(node, (ast.IfExp,)):
        return (_float_taint(node.body) or _float_taint(node.orelse))
    if isinstance(node, (ast.UnaryOp,)):
        return _float_taint(node.operand)
    return None


def _is_cycles_name(target):
    name = None
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    if name is None:
        return False
    return name == "cycles" or name.endswith("_cycles")


class FloatCyclesRule(LintRule):
    rule_id = "BF301"
    description = ("cycle counters must stay integral: no true division "
                   "or float literals flowing into *cycles variables or "
                   "*_cycles() returns")

    def applies_to(self, module):
        return not module.is_test and module.in_sim_path

    def _report(self, node, what, ctx):
        ctx.report(node, "%s mixes in a float (true division or float "
                         "literal); cycle counts must stay integers — use "
                         "// or int(...)" % what)

    def visit_Assign(self, node, ctx):
        if any(_is_cycles_name(t) for t in node.targets) \
                and _float_taint(node.value) is not None:
            self._report(node, "assignment to a cycles counter", ctx)

    def visit_AugAssign(self, node, ctx):
        if _is_cycles_name(node.target) \
                and _float_taint(node.value) is not None:
            self._report(node, "augmented assignment to a cycles counter",
                         ctx)

    def visit_FunctionDef(self, node, ctx):
        if not (node.name == "cycles" or node.name.endswith("_cycles")):
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and sub.value is not None \
                    and _float_taint(sub.value) is not None:
                self._report(sub, "return from %s()" % node.name, ctx)


class BareAssertRule(LintRule):
    rule_id = "BF302"
    description = ("no bare assert in non-test src/ code (python -O "
                   "strips it); raise an explicit exception")

    def visit_Assert(self, node, ctx):
        ctx.report(node, "assert disappears under python -O; raise an "
                         "explicit exception so the invariant is always "
                         "enforced")
