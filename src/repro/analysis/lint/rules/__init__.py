"""Rule registry: every repo-specific rule, instantiated fresh per call."""

from repro.analysis.lint.rules.cycles import BareAssertRule, FloatCyclesRule
from repro.analysis.lint.rules.determinism import (
    UnorderedIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.lint.rules.epochs import EpochCoverageRule
from repro.analysis.lint.rules.layering import LayeringRule
from repro.analysis.lint.rules.lifecycle_order import TeardownOrderRule
from repro.analysis.lint.rules.parallel_safety import (
    ParallelSafetyRule,
    UnorderedFoldRule,
)
from repro.analysis.lint.rules.policy_flags import PolicyFlagRule

_RULE_CLASSES = (
    LayeringRule,
    UnseededRandomRule,
    WallClockRule,
    UnorderedIterationRule,
    FloatCyclesRule,
    BareAssertRule,
    EpochCoverageRule,
    TeardownOrderRule,
    ParallelSafetyRule,
    UnorderedFoldRule,
    PolicyFlagRule,
)

#: Findings the engine emits itself (no rule class): parse failures and
#: suppression hygiene. Listed here so ``--list-rules`` and the SARIF
#: rule table cover every id the engine can produce.
ENGINE_RULES = (
    ("BF000", "file does not parse: syntax error reported as a finding"),
    ("BF001", "unused suppression: '# bfa: disable=...' that suppresses "
              "nothing (warning; --strict fails on it)"),
    ("BF002", "unreadable file: non-UTF-8 bytes or other parse crash "
              "reported as a finding instead of aborting the engine"),
)


def all_rules():
    """Fresh instances of every registered rule."""
    return [cls() for cls in _RULE_CLASSES]


def rule_catalog():
    """(rule_id, description) pairs, sorted by id — for ``--list-rules``.

    Includes the engine-level pseudo-rules (BF000/BF001/BF002) alongside
    the visitor/dataflow rule classes.
    """
    entries = [(cls.rule_id, cls.description) for cls in _RULE_CLASSES]
    entries.extend(ENGINE_RULES)
    return sorted(entries)
