"""Rule registry: every repo-specific rule, instantiated fresh per call."""

from repro.analysis.lint.rules.cycles import BareAssertRule, FloatCyclesRule
from repro.analysis.lint.rules.determinism import (
    UnorderedIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.lint.rules.layering import LayeringRule

_RULE_CLASSES = (
    LayeringRule,
    UnseededRandomRule,
    WallClockRule,
    UnorderedIterationRule,
    FloatCyclesRule,
    BareAssertRule,
)


def all_rules():
    """Fresh instances of every registered rule."""
    return [cls() for cls in _RULE_CLASSES]


def rule_catalog():
    """(rule_id, description) pairs, sorted by id — for ``--list-rules``."""
    return sorted((cls.rule_id, cls.description) for cls in _RULE_CLASSES)
