"""BF401: epoch-coverage for the fast-twin backing stores (``hw/``).

The exact fast path (:mod:`repro.sim.fastpath`, DESIGN §11) is only
correct because every *content* change to a TLB/cache structure bumps
its epoch counters — the L0 translation memo and the same-line cache
memo replay a previous hit iff the epochs they recorded are unchanged.
PR 4's one real bug was exactly a missed bump: ``invalidate`` removed a
line but skipped ``epoch += 1`` on a path where a ``pop``-result test
misread the fast backing's ``None`` values.

This rule makes the contract mechanical. In every ``hw/`` class that
carries epoch machinery, a statement that mutates a guarded backing
store (``_sets`` / ``_buckets`` — the stores lookups and ``entries()``
read; the pure-recency ``_lru`` / ``_stamps`` dicts are exempt by the
documented contract) must be *covered* by a set-epoch bump:

- the bump **dominates** the mutation (runs before it on every path), or
- the bump **postdominates** it (runs after it on every path), or
- the bump sits under ``if flag:`` where the check postdominates the
  mutation and the mutation's own basic block performs a def of
  ``flag`` that is guaranteed truthy (``flag += 1``, ``flag += n``
  inside ``if n:``, ``flag = <truthy constant>``) — the
  ``removed``-counter idiom the structures use for batched flushes.

The last clause is deliberately strict: ``popped = d.pop(k, None)``
followed by ``if popped is not None: epoch += 1`` does *not* qualify
(the def is not guaranteed truthy) — that is the PR 4 bug, resurfaced.

Benign membership-neutral mutations are exempted: LRU re-stamps
(``d[k] = v`` dominated by a ``k in d`` test), ``del``+reinsert pairs
on the same key in one block, and dropping an emptied bucket
(``del``/``pop`` under ``if not bucket:`` where ``bucket`` aliases the
store). Aliases are tracked through local assignments
(``tset = self._sets[index]``; ``bucket = buckets.get(vpn)``), and
helper methods that always bump (``_bump_epoch``) count as bumps at
their call sites, resolved through :class:`repro.analysis.lint.cfg
.ModuleIndex` (module-local, following same-module base classes).
"""

import ast

from repro.analysis.lint.cfg import (
    FunctionCFG,
    ModuleIndex,
    statement_calls,
    test_names,
)
from repro.analysis.lint.engine import LintRule

#: Backing stores whose *membership* the epoch contract guards. The
#: recency-only stores (``_lru``, ``_stamps``) are exempt: lookups
#: re-stamp them without bumping, by design.
GUARDED_ATTRS = frozenset({"_sets", "_buckets"})

#: Attribute names whose presence marks a class as epoch-carrying.
EPOCH_MARKERS = frozenset({"epoch", "_set_epochs", "_bump_epoch"})

#: Method names that mutate container membership in place.
MUTATORS = frozenset({
    "append", "remove", "clear", "pop", "popitem", "insert", "extend",
    "update", "setdefault", "add", "discard",
})


def _unparse(node):
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return repr(node)


def _is_rooted(expr, aliases):
    """Is ``expr`` a view into a guarded store (directly, through
    subscripts / ``.get()``, or through a tracked local alias)?"""
    while True:
        if isinstance(expr, ast.Name):
            return expr.id in aliases
        if isinstance(expr, ast.Attribute):
            if expr.attr in GUARDED_ATTRS:
                return True
            return False
        if isinstance(expr, ast.Subscript):
            expr = expr.value
            continue
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "get":
                expr = func.value
                continue
            return False
        return False


def _own_exprs(stmt):
    """The expressions evaluated *by this statement itself* — not by the
    nested statements of a compound body (those are separate CFG
    statements)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    return [stmt]


def _own_calls(stmt):
    calls = []
    for expr in _own_exprs(stmt):
        calls.extend(statement_calls(expr))
    return calls


class _Mutation:
    __slots__ = ("stmt", "store", "kind", "subscript")

    def __init__(self, stmt, store, kind, subscript=None):
        self.stmt = stmt
        self.store = store          # printable name of the store expr
        self.kind = kind            # "assign" | "delete" | "call"
        self.subscript = subscript  # unparsed d[k] text for pairing


def _mutations(stmt, aliases):
    """Guarded-store mutations performed by ``stmt``."""
    found = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript) \
                    and _is_rooted(target.value, aliases):
                found.append(_Mutation(stmt, _unparse(target.value),
                                       "assign", _unparse(target)))
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Subscript) \
                and _is_rooted(stmt.target.value, aliases):
            found.append(_Mutation(stmt, _unparse(stmt.target.value),
                                   "assign", _unparse(stmt.target)))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript) \
                    and _is_rooted(target.value, aliases):
                found.append(_Mutation(stmt, _unparse(target.value),
                                       "delete", _unparse(target)))
    for call in _own_calls(stmt):
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS \
                and _is_rooted(func.value, aliases):
            kind = "delete" if func.attr in ("pop", "popitem") else "call"
            found.append(_Mutation(stmt, _unparse(func.value), kind))
    return found


def _is_bump(stmt, bump_methods):
    """Does ``stmt`` bump an epoch counter (directly or via an
    always-bumping helper method)?"""
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Attribute) and target.attr == "epoch":
            return True
        if isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Attribute) \
                and target.value.attr == "_set_epochs":
            return True
    for call in _own_calls(stmt):
        func = call.func
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in ("self", "cls") \
                and func.attr in bump_methods:
            return True
    return False


def _lexical_if_map(func):
    """Every ``ast.If`` in ``func`` -> set of statement ids lexically
    inside its body (the true branch only, nested included)."""
    out = {}
    for node in ast.walk(func):
        if isinstance(node, ast.If):
            inside = set()
            for child in node.body:
                for sub in ast.walk(child):
                    inside.add(id(sub))
            out[node] = inside
    return out


def _enclosing_ifs(stmt, if_map):
    return [if_node for if_node, inside in if_map.items()
            if id(stmt) in inside]


def _truthy_defs(block, if_map):
    """Names guaranteed truthy after this block ran its def statements:
    ``v += <positive const>``, ``v += w`` inside ``if w:``, or
    ``v = <truthy constant>``."""
    names = set()
    for stmt in block.stmts:
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add) \
                and isinstance(stmt.target, ast.Name):
            value = stmt.value
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, (int, float)) \
                    and value.value > 0:
                names.add(stmt.target.id)
            elif isinstance(value, ast.Name):
                for if_node in _enclosing_ifs(stmt, if_map):
                    if isinstance(if_node.test, ast.Name) \
                            and if_node.test.id == value.id:
                        names.add(stmt.target.id)
                        break
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Constant) \
                and bool(stmt.value.value):
            names.add(stmt.targets[0].id)
    return names


class EpochCoverageRule(LintRule):
    rule_id = "BF401"
    description = ("hw/ structures: every mutation of a fast-twin backing "
                   "store (_sets/_buckets) must be covered on all paths by "
                   "the matching epoch bump")

    def applies_to(self, module):
        return not module.is_test and module.package == "hw"

    def check_module(self, tree, ctx):
        index = ModuleIndex(tree)
        for cls in index.classes.values():
            if not self._has_epoch_machinery(cls):
                continue
            methods = index.methods_of(cls)
            bump_methods = {name for name, fn in methods.items()
                            if self._always_bumps(fn)}
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "__init__":
                    continue  # stores are being created, nothing observes
                self._check_method(stmt, cls, index, bump_methods, ctx)

    # -- class/method classification --------------------------------------

    @staticmethod
    def _has_epoch_machinery(cls):
        for node in ast.walk(cls):
            if isinstance(node, ast.Attribute) and node.attr in EPOCH_MARKERS:
                return True
        return False

    def _always_bumps(self, func):
        """Does ``func`` bump an epoch on every path through it?"""
        cfg = FunctionCFG(func)
        postdom_entry = cfg.postdominators[cfg.entry]
        for stmt in cfg.statements():
            if _is_bump(stmt, frozenset()):
                block = cfg.block_of(stmt)
                if block is cfg.entry or block in postdom_entry:
                    return True
        return False

    # -- per-method analysis ----------------------------------------------

    def _aliases(self, stmts):
        aliases = set()
        changed = True
        while changed:
            changed = False
            for stmt in stmts:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name) \
                        and _is_rooted(stmt.value, aliases) \
                        and stmt.targets[0].id not in aliases:
                    aliases.add(stmt.targets[0].id)
                    changed = True
        return aliases

    def _check_method(self, method, cls, index, bump_methods, ctx):
        cfg = FunctionCFG(method)
        stmts = list(cfg.statements())
        aliases = self._aliases(stmts)
        mutations = []
        for stmt in stmts:
            mutations.extend(_mutations(stmt, aliases))
        if not mutations:
            return
        if_map = _lexical_if_map(method)
        mutations = [m for m in mutations
                     if not self._exempt(m, cfg, aliases, if_map)]
        if not mutations:
            return
        bumps = [s for s in stmts if _is_bump(s, bump_methods)]
        uncovered = [m for m in mutations
                     if not self._covered(m, bumps, cfg, if_map)]
        if not uncovered:
            return
        if self._call_sites_covered(method, cls, index, bump_methods):
            return
        for mutation in uncovered:
            ctx.report(mutation.stmt,
                       "mutation of fast-twin backing store '%s' in %s.%s() "
                       "has a path with no epoch bump; bump "
                       "self._set_epochs[...]/self.epoch (or _bump_epoch()) "
                       "so it dominates or follows the mutation on every "
                       "path" % (mutation.store, cls.name, method.name))

    # -- exemptions --------------------------------------------------------

    def _exempt(self, mutation, cfg, aliases, if_map):
        stmt = mutation.stmt
        # (1) LRU re-stamp: d[k] = v dominated by a `k in d` test.
        if mutation.kind == "assign" and mutation.subscript \
                and self._under_membership_test(stmt, mutation, if_map):
            return True
        # (2) del+reinsert of the same key within one block.
        if mutation.subscript \
                and self._paired_reinsert(stmt, mutation, cfg):
            return True
        # (3) dropping an emptied bucket: del under `if not bucket:`.
        if mutation.kind == "delete" \
                and self._under_emptiness_test(stmt, aliases, if_map):
            return True
        return False

    @staticmethod
    def _under_membership_test(stmt, mutation, if_map):
        target = stmt.targets[0] if isinstance(stmt, ast.Assign) \
            else stmt.target
        if not isinstance(target, ast.Subscript):
            return False
        key = _unparse(target.slice)
        store = _unparse(target.value)
        for if_node in _enclosing_ifs(stmt, if_map):
            test = if_node.test
            if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                    and isinstance(test.ops[0], ast.In) \
                    and _unparse(test.left) == key \
                    and _unparse(test.comparators[0]) == store:
                return True
        return False

    @staticmethod
    def _paired_reinsert(stmt, mutation, cfg):
        block = cfg.block_of(stmt)
        if block is None:
            return False
        pos = block.stmts.index(stmt)
        neighbors = block.stmts[max(0, pos - 1):pos] \
            + block.stmts[pos + 1:pos + 2]
        for other in neighbors:
            if isinstance(stmt, ast.Delete) and isinstance(other, ast.Assign):
                targets = other.targets
            elif isinstance(stmt, ast.Assign) \
                    and isinstance(other, ast.Delete):
                targets = other.targets
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and _unparse(target) == mutation.subscript:
                    return True
        return False

    @staticmethod
    def _under_emptiness_test(stmt, aliases, if_map):
        for if_node in _enclosing_ifs(stmt, if_map):
            test = if_node.test
            if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) \
                    and isinstance(test.operand, ast.Name) \
                    and test.operand.id in aliases:
                return True
        return False

    # -- coverage ----------------------------------------------------------

    def _covered(self, mutation, bumps, cfg, if_map):
        for bump in bumps:
            if cfg.covers(bump, mutation.stmt):
                return True
            if self._flag_guarded(bump, mutation.stmt, cfg, if_map):
                return True
        return False

    @staticmethod
    def _flag_guarded(bump, mutation_stmt, cfg, if_map):
        """``if flag: <bump>`` covers the mutation when the check itself
        always follows the mutation and the mutation's block guarantees
        ``flag`` is truthy."""
        block = cfg.block_of(mutation_stmt)
        if block is None:
            return False
        truthy = _truthy_defs(block, if_map)
        if not truthy:
            return False
        for if_node, inside in if_map.items():
            if id(bump) not in inside:
                continue
            if not (test_names(if_node.test) & truthy):
                continue
            if cfg.postdominates(if_node, mutation_stmt):
                return True
        return False

    # -- helper-method fallback -------------------------------------------

    def _call_sites_covered(self, method, cls, index, bump_methods):
        """A helper whose mutations are bumped by every caller is fine:
        resolve its call sites module-locally and require each to be
        covered by a bump in the calling function."""
        sites = []
        for func, owner in index.iter_functions():
            if func is method:
                continue
            caller_cls = owner if owner is not None else None
            cfg = None
            for stmt in FunctionCFG(func).statements():
                for call in _own_calls(stmt):
                    if index.resolve_call(call, caller_cls) is method:
                        if cfg is None:
                            cfg = FunctionCFG(func)
                        sites.append((cfg, stmt))
        if not sites:
            return False
        for cfg, site in sites:
            bumps = [s for s in cfg.statements()
                     if _is_bump(s, bump_methods)]
            if not any(cfg.covers(bump, site) for bump in bumps):
                return False
        return True
