"""BF601/BF602: parallel-safety of worker-dispatched code.

The runner fans work out over a ``ProcessPoolExecutor``
(``runner.execute`` / ``runner.parallel_map``), and the ROADMAP's next
steps (the serving daemon, sharded cloud-node runs) multiply the number
of dispatch sites. Two properties keep ``--jobs N`` bit-identical to
sequential:

- **BF601 — workers must not write module globals.** A worker process
  mutates its *own* copy of module state; the parent never sees it, so
  a fold accumulated in a global is silently empty (or, with ``fork``
  start methods, nondeterministically partial). Functions reachable
  from a dispatch site (``pool.submit(fn, ...)``, ``parallel_map(fn,
  ...)``) must not ``global``-rebind names or mutate module-level
  containers. Pool *initializer* functions (``initializer=...``) are
  exempt along with their exclusive callees: configuring worker-local
  state (the disk-cache handle) is exactly what initializers are for.
- **BF602 — folds must not iterate unordered collections.** Results
  coming back via ``as_completed`` already arrive in nondeterministic
  order; merges stay deterministic only because they key results by
  request. Iterating a ``set`` (or calling ``dict.popitem()``) inside a
  dispatching function or a worker-reachable function makes the folded
  output depend on hash seeds and arrival order — the same class of bug
  BF203 bans inside the simulator, extended here to the fan-out/fold
  layer.

Reachability is module-local (the engine lints files independently):
roots are the function names passed to ``submit``/``parallel_map``/
``initializer=`` in this module, plus any functions named by a
top-level ``DISPATCH_ROOTS = ("fn", ...)`` marker — the opt-in for
modules whose entry points are dispatched from *elsewhere* (e.g.
``repro.sim.batch.run_quantum_batch``, dispatched per quantum by the
simulator: its chunk folds are exactly the accumulate-then-fold shape
these rules police, and without the marker the module-local root scan
cannot see them). Edges follow
:meth:`repro.analysis.lint.cfg.ModuleIndex.resolve_call`. Cross-module
workers (e.g. ``common.run_app``) are out of scope here; each module's
own dispatch sites cover its own workers.
"""

import ast

from repro.analysis.lint.cfg import (
    FunctionCFG,
    ModuleIndex,
    assigned_names,
    function_statements,
)
from repro.analysis.lint.engine import LintRule
from repro.analysis.lint.rules.determinism import _is_set_expr
from repro.analysis.lint.rules.epochs import MUTATORS, _own_calls

#: Call attribute names that dispatch a function to a worker process.
_DISPATCH_ATTRS = frozenset({"submit"})
_DISPATCH_NAMES = frozenset({"parallel_map"})

#: Top-level marker naming functions dispatched from outside the module.
_ROOTS_MARKER = "DISPATCH_ROOTS"


def _marker_roots(tree, index):
    """Functions named by a top-level ``DISPATCH_ROOTS`` tuple/list of
    string constants (unresolvable names are ignored)."""
    roots = set()
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == _ROOTS_MARKER
                   for t in stmt.targets):
            continue
        if isinstance(stmt.value, (ast.Tuple, ast.List)):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, str):
                    target = index.functions.get(elt.value)
                    if target is not None:
                        roots.add(target)
    return roots


def _call_name(call):
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _module_globals(tree):
    """Names bound at module top level (candidates for shared-state
    mutation)."""
    names = set()
    for stmt in tree.body:
        names |= assigned_names(stmt)
    return names


class ParallelSafetyRule(LintRule):
    rule_id = "BF601"
    description = ("functions dispatched to pool workers must not write "
                   "module-level globals (worker writes never reach the "
                   "parent)")

    def applies_to(self, module):
        return not module.is_test

    def check_module(self, tree, ctx):
        index = ModuleIndex(tree)
        dispatch_roots, init_roots = self._roots(index)
        dispatch_roots |= _marker_roots(tree, index)
        if not dispatch_roots and not init_roots:
            return
        reachable = self._reachable(dispatch_roots, index)
        exempt = self._reachable(init_roots, index) - reachable
        module_names = _module_globals(tree)
        for func in sorted(reachable, key=lambda f: f.lineno):
            if func in exempt:
                continue
            self._check_worker(func, index, module_names, ctx)

    # -- dispatch discovery ------------------------------------------------

    def _roots(self, index):
        dispatch, init = set(), set()
        for func, cls in index.iter_functions():
            for stmt in function_statements(func):
                for call in _own_calls(stmt):
                    name = _call_name(call)
                    target = None
                    if name in _DISPATCH_ATTRS or name in _DISPATCH_NAMES:
                        if call.args and isinstance(call.args[0], ast.Name):
                            target = index.functions.get(call.args[0].id)
                        if target is not None:
                            dispatch.add(target)
                    for keyword in call.keywords:
                        if keyword.arg == "initializer" \
                                and isinstance(keyword.value, ast.Name):
                            target = index.functions.get(keyword.value.id)
                            if target is not None:
                                init.add(target)
        return dispatch, init

    def _reachable(self, roots, index):
        seen = set(roots)
        stack = list(roots)
        while stack:
            func = stack.pop()
            cls = self._owner_of(func, index)
            for stmt in function_statements(func):
                for call in _own_calls(stmt):
                    callee = index.resolve_call(call, cls)
                    if callee is not None and callee not in seen:
                        seen.add(callee)
                        stack.append(callee)
        return seen

    @staticmethod
    def _owner_of(func, index):
        for candidate, cls in index.iter_functions():
            if candidate is func:
                return cls
        return None

    # -- worker checks -----------------------------------------------------

    def _check_worker(self, func, index, module_names, ctx):
        declared_global = set()
        params = {a.arg for a in func.args.args + func.args.kwonlyargs}
        if func.args.vararg:
            params.add(func.args.vararg.arg)
        if func.args.kwarg:
            params.add(func.args.kwarg.arg)
        locals_bound = set(params)
        stmts = function_statements(func)
        for stmt in stmts:
            if isinstance(stmt, ast.Global):
                declared_global.update(stmt.names)
            else:
                locals_bound |= assigned_names(stmt)
        locals_bound -= declared_global
        for stmt in stmts:
            self._check_statement(stmt, func, declared_global,
                                  module_names - locals_bound, ctx)

    def _check_statement(self, stmt, func, declared_global, globals_visible,
                         ctx):
        # Rebinding through an explicit `global` declaration.
        rebinding = assigned_names(stmt) & declared_global \
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)) \
            else set()
        for name in sorted(rebinding):
            ctx.report(stmt,
                       "worker function %s() rebinds module global '%s'; "
                       "the write stays in the worker process and never "
                       "reaches the parent — return the value instead"
                       % (func.name, name))
        # In-place mutation of a module-level container.
        for call in _own_calls(stmt):
            cfunc = call.func
            if isinstance(cfunc, ast.Attribute) and cfunc.attr in MUTATORS \
                    and isinstance(cfunc.value, ast.Name) \
                    and cfunc.value.id in globals_visible:
                ctx.report(stmt,
                           "worker function %s() mutates module-level "
                           "container '%s'; worker-side mutations are "
                           "invisible to the parent — return results and "
                           "fold them in the dispatching process"
                           % (func.name, cfunc.value.id))
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        for target in targets:
            if isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id in globals_visible:
                ctx.report(stmt,
                           "worker function %s() stores into module-level "
                           "container '%s'; worker-side writes are invisible "
                           "to the parent — return results instead"
                           % (func.name, target.value.id))


class UnorderedFoldRule(LintRule):
    rule_id = "BF602"
    description = ("worker folds must not depend on unordered iteration: "
                   "no set iteration or dict.popitem() in dispatching or "
                   "worker-reachable functions")

    def applies_to(self, module):
        return not module.is_test

    def check_module(self, tree, ctx):
        index = ModuleIndex(tree)
        safety = ParallelSafetyRule()
        dispatch_roots, init_roots = safety._roots(index)
        dispatch_roots |= _marker_roots(tree, index)
        scope = set(safety._reachable(dispatch_roots, index))
        # The fold side lives in the functions that dispatch or drain
        # as_completed — include them.
        for func, cls in index.iter_functions():
            for stmt in function_statements(func):
                for call in _own_calls(stmt):
                    if _call_name(call) in ("as_completed", "submit",
                                            "parallel_map"):
                        scope.add(func)
        for func in sorted(scope, key=lambda f: f.lineno):
            self._check_function(func, ctx)

    def _check_function(self, func, ctx):
        for node in ast.walk(func):
            iter_expr = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, ast.comprehension):
                iter_expr = node.iter
            if iter_expr is not None and _is_set_expr(iter_expr):
                ctx.report(node,
                           "iteration over an unordered set in "
                           "worker/fold function %s(): the folded result "
                           "depends on hash seeds and arrival order; sort "
                           "or key by request instead" % func.name)
            if isinstance(node, ast.Call) \
                    and _call_name(node) == "popitem":
                ctx.report(node,
                           "dict.popitem() in worker/fold function %s() "
                           "pops in unordered fashion across workers; use "
                           "an explicit, keyed order" % func.name)
