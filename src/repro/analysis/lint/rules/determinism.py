"""BF201/BF202/BF203: determinism contracts for simulation code.

Runs must be bit-for-bit reproducible from their seeds: the paper's
numbers are diffs between configurations, and any nondeterminism shows up
as noise indistinguishable from a mechanism effect. Three ways it leaks
in:

- BF201: drawing from Python's module-level RNG (``random.randrange``,
  ``random.shuffle``, …) or constructing ``random.Random()`` without a
  seed. All randomness must come from an explicitly seeded ``Random``.
- BF202: reading the wall clock (``time.time``, ``datetime.now``, …)
  inside simulation packages, where the only time is simulated cycles.
- BF203: iterating a set (or set-operation result) in simulation
  packages. Set order depends on insertion history and hash seeds; when
  such an iteration feeds cycle accounting or replacement decisions the
  run becomes order-dependent. Wrap in ``sorted(...)`` instead.
"""

import ast

from repro.analysis.lint.engine import LintRule

#: Module-level random functions that consume the shared hidden state.
_MODULE_RNG_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

_WALL_CLOCK = {
    "time": frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns", "process_time",
                       "process_time_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
}

#: Methods on sets that return sets (iterating their result is unordered).
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference"})


def _call_target(node):
    """(module_name, attr_name) for ``module.attr(...)`` calls, else None."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


class UnseededRandomRule(LintRule):
    rule_id = "BF201"
    description = ("no module-level random.* calls or unseeded "
                   "random.Random(); thread a seeded Random through")

    def visit_Call(self, node, ctx):
        target = _call_target(node)
        if target is None:
            return
        mod, attr = target
        if mod != "random":
            return
        if attr in _MODULE_RNG_FNS:
            ctx.report(node, "module-level random.%s() uses the shared "
                             "unseeded RNG; draw from a seeded "
                             "random.Random(seed) instance" % attr)
        elif attr in ("Random", "SystemRandom") and not node.args \
                and not node.keywords:
            ctx.report(node, "random.%s() without a seed is "
                             "nondeterministic; pass an explicit seed" % attr)

    def visit_ImportFrom(self, node, ctx):
        if node.level or node.module != "random":
            return
        names = [a.name for a in node.names
                 if a.name in _MODULE_RNG_FNS or a.name == "*"]
        if names:
            ctx.report(node, "importing %s from random hides module-level "
                             "RNG use; import random and use a seeded "
                             "Random instance" % ", ".join(names))


class WallClockRule(LintRule):
    rule_id = "BF202"
    description = "no wall-clock reads in simulation packages"

    def applies_to(self, module):
        return not module.is_test and module.in_sim_path

    def visit_Call(self, node, ctx):
        target = _call_target(node)
        if target is None:
            # datetime.datetime.now() — Attribute on an Attribute.
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "datetime"
                    and func.attr in _WALL_CLOCK["datetime"]):
                ctx.report(node, "wall-clock datetime.%s.%s() in a "
                                 "simulation path; the only time here is "
                                 "simulated cycles" % (func.value.attr,
                                                       func.attr))
            return
        mod, attr = target
        if attr in _WALL_CLOCK.get(mod, ()):
            ctx.report(node, "wall-clock %s.%s() in a simulation path; the "
                             "only time here is simulated cycles"
                       % (mod, attr))


def _is_set_expr(node):
    """Conservatively: is this expression definitely a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            # x.union(y) — only certain when x is itself a set expression,
            # but flag regardless: these methods exist solely on sets in
            # this codebase.
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd,
                                                            ast.BitOr)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class UnorderedIterationRule(LintRule):
    rule_id = "BF203"
    description = ("no iteration over unordered sets in simulation "
                   "packages; wrap in sorted(...)")

    def applies_to(self, module):
        return not module.is_test and module.in_sim_path

    def _check_iter(self, node, iter_node, ctx):
        if _is_set_expr(iter_node):
            ctx.report(node, "iteration order over a set depends on hashing "
                             "and insertion history; wrap in sorted(...) so "
                             "downstream accounting is deterministic")

    def visit_For(self, node, ctx):
        self._check_iter(node, node.iter, ctx)

    def visit_comprehension(self, node, ctx):
        self._check_iter(node, node.iter, ctx)
