"""BF701: no raw policy-flag dispatch outside the policy layer.

Policy selection is the :mod:`repro.core.policy` registry; the
``babelfish_tlb``/``babelfish_pt`` booleans (and the ``is_babelfish``
shorthand) survive only as ``SimConfig`` storage plus back-compat
derivation. A raw read like ``if config.babelfish_tlb:`` anywhere else
re-creates the pre-registry dispatch pattern in which "not BabelFish"
silently means "conventional" — exactly the misroute that sent any third
policy (Victima, coalesced) down the conventional path. Branch on the
registry's capability queries instead: ``config.shared_tlb_entries``,
``config.shares_page_tables``, ``config.share_l1_tlb``, or the
``config.translation_policy`` singleton's attributes.
"""

import ast

from repro.analysis.lint.engine import LintRule

#: Attribute reads that bypass the registry.
_RAW_FLAGS = frozenset({"babelfish_tlb", "babelfish_pt", "is_babelfish"})

#: Files that *are* the policy layer: the config declares/derives the
#: flags and the registry maps them onto capabilities.
_ALLOWED_SUFFIXES = ("sim/config.py", "core/policy.py")


class PolicyFlagRule(LintRule):
    rule_id = "BF701"
    description = ("no raw policy-flag reads (babelfish_tlb/babelfish_pt/"
                   "is_babelfish) outside sim/config.py and the policy "
                   "registry; use capability queries")

    def applies_to(self, module):
        if module.is_test:
            return False
        path = module.path.replace("\\", "/")
        return not path.endswith(_ALLOWED_SUFFIXES)

    def visit_Attribute(self, node, ctx):
        if node.attr in _RAW_FLAGS and isinstance(node.ctx, ast.Load):
            ctx.report(node, "raw policy-flag read '.%s' dispatches by "
                             "boolean and silently misroutes any third "
                             "policy to the conventional path; branch on a "
                             "registry capability (shared_tlb_entries, "
                             "shares_page_tables, translation_policy.*) "
                             "instead" % node.attr)
