"""Repo-aware lint: AST-visitor engine plus the rule packages."""

from repro.analysis.lint.engine import LintContext, LintEngine, LintRule, ModuleInfo

__all__ = ["LintContext", "LintEngine", "LintRule", "ModuleInfo"]
