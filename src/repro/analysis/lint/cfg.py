"""Per-function control-flow graphs and def-use facts over ``ast``.

The dataflow rule families (BF4xx epoch coverage, BF5xx teardown
ordering, BF6xx parallel safety) all ask ordering questions that a
single-node visitor cannot answer: *does this statement happen before
that one on every path?* This module gives them the machinery:

- :class:`FunctionCFG` — basic blocks for one function body, with
  edges for ``if``/``for``/``while``/``try``/``break``/``continue``/
  ``return``/``raise``, a virtual entry and exit, and iteratively
  computed dominator and postdominator sets.
- Statement-level queries — :meth:`FunctionCFG.dominates` /
  :meth:`FunctionCFG.postdominates` lift block dominance to individual
  statements (within a straight-line block, textual order decides).
- :class:`ModuleIndex` — module-level call-site resolution: maps
  ``self.helper()`` to the method defined on the same class (or a base
  class defined in the same module) and ``helper()`` to the module
  function, so a rule can reason across small helper boundaries (the
  scope is deliberately one module: the lint engine parses files
  independently).

The CFG is *approximate* in the usual lint sense: exceptions raised
mid-statement are not modelled (a block is treated as straight-line),
``try`` bodies get an extra edge from their entry to each handler, and
dynamic calls are unresolved. The rules built on top are tuned so these
approximations produce missed edges, not spurious paths, for the
patterns they check.
"""

import ast


class Block:
    """One basic block: a straight-line run of statements.

    Branching statements (``if``/``while``/``for``) appear as the *last*
    statement of the block that evaluates their test, so "the check was
    reached" is expressible as dominance of that statement.
    """

    __slots__ = ("index", "stmts", "succs", "preds")

    def __init__(self, index):
        self.index = index
        self.stmts = []
        self.succs = []
        self.preds = []

    def add_edge(self, succ):
        if succ not in self.succs:
            self.succs.append(succ)
            succ.preds.append(self)

    def __repr__(self):
        lines = [getattr(s, "lineno", "?") for s in self.stmts]
        return "<Block %d lines=%s succs=%s>" % (
            self.index, lines, [b.index for b in self.succs])


class FunctionCFG:
    """Control-flow graph for one ``ast.FunctionDef`` body."""

    def __init__(self, func):
        self.func = func
        self.blocks = []
        self.entry = self._new_block()
        self.exit = self._new_block()  # virtual: returns/raises/fallthrough
        self._block_of = {}   # id(stmt) -> Block
        self._index_of = {}   # id(stmt) -> position within its block
        end = self._build(func.body, self.entry, loop=None, handlers=())
        if end is not None:
            end.add_edge(self.exit)
        self._dom = None
        self._postdom = None

    # -- construction ------------------------------------------------------

    def _new_block(self):
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _place(self, stmt, block):
        self._index_of[id(stmt)] = len(block.stmts)
        self._block_of[id(stmt)] = block
        block.stmts.append(stmt)

    def _build(self, stmts, current, loop, handlers):
        """Wire ``stmts`` starting in ``current``; returns the block
        control falls out of, or None when every path diverted (return/
        raise/break/continue). ``loop`` is ``(header, after)`` for the
        innermost loop; ``handlers`` are the except-entry blocks any
        statement in an active ``try`` body may jump to."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after a terminator: park it in a
                # fresh, disconnected block so lookups still work.
                current = self._new_block()
            if handlers:
                for handler in handlers:
                    current.add_edge(handler)
            if isinstance(stmt, (ast.If,)):
                self._place(stmt, current)
                then_block = self._new_block()
                current.add_edge(then_block)
                then_end = self._build(stmt.body, then_block, loop, handlers)
                else_block = self._new_block()
                current.add_edge(else_block)
                else_end = self._build(stmt.orelse, else_block, loop,
                                       handlers)
                if then_end is None and else_end is None:
                    current = None
                    continue
                after = self._new_block()
                if then_end is not None:
                    then_end.add_edge(after)
                if else_end is not None:
                    else_end.add_edge(after)
                current = after
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                header = self._new_block()
                current.add_edge(header)
                self._place(stmt, header)
                after = self._new_block()
                body = self._new_block()
                header.add_edge(body)
                header.add_edge(after)  # zero-iteration / condition false
                body_end = self._build(stmt.body, body, (header, after),
                                       handlers)
                if body_end is not None:
                    body_end.add_edge(header)
                if stmt.orelse:
                    # for/while-else runs on normal loop exit; fold it
                    # into the after block's flow.
                    else_end = self._build(stmt.orelse, after, loop, handlers)
                    current = else_end
                else:
                    current = after
            elif isinstance(stmt, ast.Try):
                self._place(stmt, current)
                body = self._new_block()
                current.add_edge(body)
                handler_blocks = []
                for handler in stmt.handlers:
                    hb = self._new_block()
                    current.add_edge(hb)  # body may fault before running
                    handler_blocks.append(hb)
                body_end = self._build(stmt.body, body, loop,
                                       handlers + tuple(handler_blocks))
                ends = []
                if body_end is not None:
                    if stmt.orelse:
                        body_end = self._build(stmt.orelse, body_end, loop,
                                               handlers)
                    ends.append(body_end)
                for handler, hb in zip(stmt.handlers, handler_blocks):
                    ends.append(self._build(handler.body, hb, loop, handlers))
                ends = [e for e in ends if e is not None]
                if stmt.finalbody:
                    final = self._new_block()
                    for e in ends:
                        e.add_edge(final)
                    if not ends:
                        current.add_edge(final)  # finally still runs
                    current = self._build(stmt.finalbody, final, loop,
                                          handlers)
                elif ends:
                    after = self._new_block()
                    for e in ends:
                        e.add_edge(after)
                    current = after
                else:
                    current = None
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._place(stmt, current)
                current = self._build(stmt.body, current, loop, handlers)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self._place(stmt, current)
                current.add_edge(self.exit)
                current = None
            elif isinstance(stmt, ast.Break):
                self._place(stmt, current)
                if loop is not None:
                    current.add_edge(loop[1])
                current = None
            elif isinstance(stmt, ast.Continue):
                self._place(stmt, current)
                if loop is not None:
                    current.add_edge(loop[0])
                current = None
            else:
                # Straight-line statement (incl. nested function/class
                # defs, whose bodies are separate CFGs).
                self._place(stmt, current)
        return current

    # -- dominance ---------------------------------------------------------

    def _solve(self, root, edges):
        """Iterative dominator solve from ``root`` following ``edges``
        (a function Block -> predecessor list in the chosen direction)."""
        every = set(self.blocks)
        dom = {b: set(every) for b in self.blocks}
        dom[root] = {root}
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                if block is root:
                    continue
                preds = edges(block)
                new = set.intersection(*(dom[p] for p in preds)) \
                    if preds else set()
                new = new | {block}
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        return dom

    @property
    def dominators(self):
        if self._dom is None:
            self._dom = self._solve(self.entry, lambda b: b.preds)
        return self._dom

    @property
    def postdominators(self):
        if self._postdom is None:
            self._postdom = self._solve(self.exit, lambda b: b.succs)
        return self._postdom

    def block_of(self, stmt):
        return self._block_of.get(id(stmt))

    def _position(self, stmt):
        return self._block_of.get(id(stmt)), self._index_of.get(id(stmt))

    def dominates(self, a, b):
        """Does statement ``a`` execute before ``b`` on every path that
        reaches ``b``? Within one block, textual order decides."""
        ba, ia = self._position(a)
        bb, ib = self._position(b)
        if ba is None or bb is None:
            return False
        if ba is bb:
            return ia < ib
        return ba in self.dominators[bb] and ba is not bb

    def postdominates(self, a, b):
        """Does statement ``a`` execute after ``b`` on every path from
        ``b`` to the function's exit?"""
        ba, ia = self._position(a)
        bb, ib = self._position(b)
        if ba is None or bb is None:
            return False
        if ba is bb:
            return ia > ib
        return ba in self.postdominators[bb] and ba is not bb

    def covers(self, a, b):
        """``a`` dominates or postdominates ``b`` — "on every path
        through ``b``, ``a`` also runs (before or after)"."""
        return self.dominates(a, b) or self.postdominates(a, b)

    def statements(self):
        for block in self.blocks:
            for stmt in block.stmts:
                yield stmt


# -- module-level indexing ---------------------------------------------------


def function_statements(func):
    """Top-to-bottom statements of ``func``'s body, without descending
    into nested function/class definitions."""
    out = []
    stack = list(reversed(func.body))
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(reversed(getattr(stmt, field, []) or []))
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(reversed(handler.body))
    return out


def statement_calls(stmt):
    """Every ``ast.Call`` inside ``stmt`` (not descending into nested
    defs)."""
    calls = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            calls.append(node)
    return calls


def assigned_names(stmt):
    """Local names *bound* by an assignment-ish statement.

    A ``Subscript``/``Attribute`` target mutates an object without
    binding any name, so only ``Name`` targets count (through tuple/list
    unpacking and starred targets).
    """
    names = set()
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [item.optional_vars for item in stmt.items
                   if item.optional_vars is not None]
    while targets:
        target = targets.pop()
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            targets.extend(target.elts)
        elif isinstance(target, ast.Starred):
            targets.append(target.value)
    return names


def test_names(expr):
    """Plain names referenced by a branch condition."""
    return {node.id for node in ast.walk(expr) if isinstance(node, ast.Name)}


class ModuleIndex:
    """Functions, classes, and intra-module call resolution.

    ``methods_of(cls)`` follows base classes *defined in the same
    module* (the engine lints files independently), which is enough to
    resolve the helper-method patterns the dataflow rules care about
    (``Fast*`` twins inheriting ``_bump_epoch`` from their reference
    base, teardown helpers on ``Kernel``).
    """

    def __init__(self, tree):
        self.tree = tree
        self.functions = {}
        self.classes = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node

    def mro(self, cls):
        """``cls`` then its module-local bases, depth-first."""
        out, stack = [], [cls]
        seen = set()
        while stack:
            node = stack.pop(0)
            if id(node) in seen:
                continue
            seen.add(id(node))
            out.append(node)
            for base in node.bases:
                if isinstance(base, ast.Name) and base.id in self.classes:
                    stack.append(self.classes[base.id])
        return out

    def methods_of(self, cls):
        """name -> FunctionDef, nearest definition first (subclass wins)."""
        methods = {}
        for node in self.mro(cls):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.setdefault(stmt.name, stmt)
        return methods

    def resolve_call(self, call, cls=None):
        """The module-local FunctionDef a call targets, or None.

        Resolves ``name(...)`` to a module function and
        ``self.name(...)`` / ``cls.name(...)`` to a method of ``cls``
        (the class whose method contains the call).
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if cls is not None and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in ("self", "cls"):
            return self.methods_of(cls).get(func.attr)
        return None

    def iter_functions(self):
        """(function, enclosing class or None) for every def in the
        module, including methods."""
        for func in self.functions.values():
            yield func, None
        for cls in self.classes.values():
            for stmt in cls.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield stmt, cls
