"""Repo-aware static analysis and runtime sanitizers.

Two halves, both specific to this codebase's correctness model:

- :mod:`repro.analysis.lint` — an AST-visitor lint engine with rules that
  machine-enforce the repository's contracts: layering (``hw/`` never
  imports ``kernel/`` or ``sim/``), determinism (no unseeded RNGs or
  wall-clock reads in simulation paths), and cycle integrity (cycle
  counters stay integral; no bare ``assert`` in shipped code).
  Run it as ``python -m repro.analysis``.

- :mod:`repro.analysis.sanitizer` — a runtime translation-coherence
  sanitizer: a shadow MMU that cross-checks every TLB fill, hit, and
  invalidation against an independent architectural walk of the kernel
  page tables. Enable with ``SimConfig(sanitize=True)``.

Findings from either half use the structured types in
:mod:`repro.analysis.findings`.
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.sanitizer import (
    CoherenceError,
    CoherenceViolation,
    TranslationSanitizer,
)

__all__ = [
    "CoherenceError",
    "CoherenceViolation",
    "Finding",
    "Severity",
    "TranslationSanitizer",
]
