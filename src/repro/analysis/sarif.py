"""SARIF 2.1.0 serialization for analysis findings.

Static Analysis Results Interchange Format (SARIF) is the schema GitHub
code scanning (and most CI annotators) ingest. We emit the minimal
conforming subset: one run, one driver, the rule catalog as
``tool.driver.rules``, and one ``result`` per finding with a physical
location. Paths are emitted relative to the invocation root so the
upload matches the repository layout regardless of where the runner
checked out.
"""

import pathlib

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

#: Finding severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning"}


def _relative(path, root):
    if root is None:
        return pathlib.PurePath(path).as_posix()
    try:
        resolved = pathlib.Path(path).resolve()
        return resolved.relative_to(pathlib.Path(root).resolve()).as_posix()
    except (ValueError, OSError):
        return pathlib.PurePath(path).as_posix()


def to_sarif(findings, root=None):
    """Build a SARIF ``dict`` for ``findings`` (paths relative to ``root``)."""
    from repro.analysis.lint.rules import rule_catalog

    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule_id,
            "level": _LEVELS.get(str(finding.severity), "error"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _relative(finding.path, root),
                        "uriBaseId": "SRCROOT",
                    },
                    # SARIF regions are 1-based; whole-file findings
                    # (BF002 decode failures) anchor to line 1.
                    "region": {"startLine": max(finding.line, 1)},
                },
            }],
        })
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri":
                        "https://github.com/babelfish-repro/repro",
                    "rules": [
                        {
                            "id": rule_id,
                            "shortDescription": {"text": description},
                        }
                        for rule_id, description in rule_catalog()
                    ],
                },
            },
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
