"""ASLR configurations for BabelFish (Section IV-D).

Three regimes:

- ``INHERITED`` — the conventional baseline: containers are forked from a
  common parent and inherit its randomized layout, so group members
  naturally share VPNs (this is also why the paper's native Figure 9
  measurements see identical {VPN, PPN} pairs).
- ``SW`` — ASLR-SW: one private seed per CCID group; all members get the
  same randomized layout. Minimal OS changes; sharing can happen at every
  TLB level.
- ``HW`` — ASLR-HW: every process gets its own seed. A logic module
  between the L1 and L2 TLBs adds the per-segment ``diff_i_offset[]`` so
  the L2 TLB and page tables operate on the group's shared layout. Costs
  2 cycles on an L1 TLB miss and confines sharing to the L2 TLB and below.
  This is the paper's (and our) default for BabelFish evaluations.
"""

import enum

from repro.kernel.aslr_layout import randomized_layout


class ASLRMode(enum.Enum):
    INHERITED = "inherited"
    SW = "aslr-sw"
    HW = "aslr-hw"

    @property
    def per_process_layout(self):
        return self is ASLRMode.HW

    @property
    def shares_l1(self):
        """Whether translation sharing is allowed at the L1 TLB.

        Under ASLR-HW the transformation sits between L1 and L2, so the
        L1 TLB keeps per-process (PCID-matched) entries only.
        """
        return self is not ASLRMode.HW


def group_layout_for(group, mode):
    """The CCID group's shared layout (what page tables are built in)."""
    return randomized_layout(group.aslr_seed)


def process_layout_for(group, mode, pid_seed):
    """The layout the process itself observes."""
    if mode.per_process_layout:
        return randomized_layout((group.aslr_seed << 20) ^ pid_seed)
    return group_layout_for(group, mode)
