"""The BabelFish TLB lookup algorithm — Figure 8's flowchart.

Entries are matched on VPN *and CCID*. On a match:

- Ownership set: hit only if the PCID also matches (private translation).
- Ownership clear (shared): hit unless the requesting process holds a
  private copy of the page — its bit in the PC bitmask is set. The bitmask
  check (and its extra latency) is skipped when ORPC is clear (Figure 5b).
- A write hit on a CoW translation raises a CoW page fault (boxes 5/6).

The lookup is policy-only: it layers on the generic
:class:`repro.hw.tlb.MultiSizeTLB` structures.
"""

from repro.hw.types import PageSize
from repro.hw.tlb import TLBEntry
from repro.core.mask_page import region_of


def entry_region(entry):
    """1GB MaskPage region covered by a TLB entry (any page size)."""
    vpn4k = entry.vpn << (entry.page_size.shift - PageSize.SIZE_4K.shift)
    return region_of(vpn4k)


def hit_provenance(entry, proc):
    """True when a hit lands on an entry another process inserted.

    This is the Figure 10b "Shared Hits" predicate — the same
    ``inserted_by != pid`` test :class:`repro.sim.stats.MMUStats` counts
    ``l2_shared_hits_*`` with, shared here so trace events and counters
    can never drift apart.
    """
    return entry.inserted_by != proc.pid


class LookupResult:
    """One TLB-level lookup outcome (allocated per probe on the hot path,
    hence ``__slots__`` rather than a dataclass).

    ``consulted_bitmask``: the PC bitmask had to be consulted, so the L2
    TLB access takes the long (12-cycle) time instead of the short
    (10-cycle) one. ``cow_fault``: the hit entry is CoW and the access is
    a write — CoW page fault.
    """

    __slots__ = ("entry", "page_size", "consulted_bitmask", "cow_fault")

    def __init__(self, entry, page_size, consulted_bitmask=False,
                 cow_fault=False):
        self.entry = entry            # TLBEntry or None
        self.page_size = page_size    # PageSize or None
        self.consulted_bitmask = consulted_bitmask
        self.cow_fault = cow_fault

    @property
    def hit(self):
        return self.entry is not None and not self.cow_fault


class BabelFishLookup:
    """Reusable lookup engine for one TLB level.

    ``domain_fn`` maps a TLB entry to the MaskPage scope a process's PC
    bit is keyed by: the 1GB region by default, or the 2MB range under
    the Appendix's per-range indirection extension.
    """

    def __init__(self, multi_tlb, domain_fn=None):
        self.multi_tlb = multi_tlb
        self.domain_fn = domain_fn or entry_region

    def lookup(self, vpn4k, proc, is_write=False):
        consulted = [False]
        pcid, ccid = proc.pcid, proc.ccid
        pc_bits = proc.pc_bits
        domain_fn = self.domain_fn

        def match(entry):
            if entry.ccid != ccid:
                return False                            # box 1: no CCID match
            if entry.o_bit:
                return entry.pcid == pcid               # boxes 2, 9
            if entry.orpc:
                consulted[0] = True                     # box 3 (long access)
                bit = pc_bits.get(domain_fn(entry))
                if bit is not None and (entry.pc_mask >> bit) & 1:
                    return False                        # process has private copy
            if is_write and not entry.writable and not entry.cow:
                return False                            # permission miss
            return True

        entry, size = self.multi_tlb.lookup(vpn4k, match)
        cow_fault = bool(entry is not None and is_write and entry.cow)  # box 5/6
        return LookupResult(entry, size, consulted[0], cow_fault)


def conventional_lookup(multi_tlb, vpn4k, proc, is_write=False):
    """Baseline lookup: VPN + PCID match (Figure 1), permission-checked."""

    def match(entry):
        if entry.pcid != proc.pcid:
            return False
        if is_write and not entry.writable and not entry.cow:
            return False
        return True

    entry, size = multi_tlb.lookup(vpn4k, match)
    cow_fault = bool(entry is not None and is_write and entry.cow)
    return LookupResult(entry, size, False, cow_fault)


def babelfish_lookup_fast(multi, vpn4k, proc, is_write, domain_fn):
    """:meth:`BabelFishLookup.lookup` with the Figure 8 predicate inlined
    over :class:`~repro.hw.tlb.FastMultiSizeTLB` internals.

    Same hits/misses/LRU effects, no closure or :class:`LookupResult`
    allocation per probe. Returns ``(entry, page_size, consulted_bitmask,
    cow_fault)``; only the simulator fast path calls this, and
    tests/test_fastpath.py drives it against the reference lookup.
    """
    pcid = proc.pcid
    ccid = proc.ccid
    pc_bits = proc.pc_bits
    consulted = False
    for size, shift, tlb in multi._probe:
        vpn = vpn4k >> shift
        index = vpn & tlb.set_mask
        bucket = tlb._buckets[index].get(vpn)
        if bucket:
            for entry in bucket:
                if entry.ccid != ccid:
                    continue                            # box 1: no CCID match
                if entry.o_bit:
                    if entry.pcid != pcid:
                        continue                        # boxes 2, 9
                else:
                    if entry.orpc:
                        consulted = True                # box 3 (long access)
                        bit = pc_bits.get(domain_fn(entry))
                        if bit is not None \
                                and (entry.pc_mask >> bit) & 1:
                            continue        # process has private copy
                    if is_write and not entry.writable and not entry.cow:
                        continue                        # permission miss
                lru = tlb._lru[index]
                del lru[entry]
                lru[entry] = None
                tlb.hits += 1
                return entry, size, consulted, (is_write and entry.cow)
        tlb.misses += 1
    return None, None, consulted, False


def conventional_lookup_fast(multi, vpn4k, pcid, is_write):
    """:func:`conventional_lookup` inlined over
    :class:`~repro.hw.tlb.FastMultiSizeTLB` internals; returns
    ``(entry, page_size, cow_fault)``."""
    for size, shift, tlb in multi._probe:
        vpn = vpn4k >> shift
        index = vpn & tlb.set_mask
        bucket = tlb._buckets[index].get(vpn)
        if bucket:
            for entry in bucket:
                if entry.pcid != pcid:
                    continue
                if is_write and not entry.writable and not entry.cow:
                    continue
                lru = tlb._lru[index]
                del lru[entry]
                lru[entry] = None
                tlb.hits += 1
                return entry, size, (is_write and entry.cow)
        tlb.misses += 1
    return None, None, False


def babelfish_fill_fields(fill_info, load_bitmask=True):
    """Derive the stored O-PC fields for a TLB fill.

    ``fill_info`` is ``(o_bit, orpc, pc_mask)`` from the page-table policy.
    Per Figure 5(b), the PC bitmask is only loaded into the TLB when O is
    clear and ORPC is set; otherwise the storage is cleared. Returns
    ``(o_bit, orpc, stored_mask, long_access)``.
    """
    o_bit, orpc, pc_mask = fill_info
    if not o_bit and orpc and load_bitmask:
        return o_bit, orpc, pc_mask, True
    return o_bit, orpc, 0, False


def make_entry(vpn, pte, proc, fill_info, page_size):
    """Build a BabelFish TLB entry from a walk result."""
    o_bit, orpc, mask, _long = babelfish_fill_fields(fill_info)
    return TLBEntry(
        vpn=vpn, ppn=pte.ppn, page_size=page_size, pcid=proc.pcid,
        ccid=proc.ccid, writable=pte.writable, user=pte.user, cow=pte.cow,
        o_bit=o_bit, orpc=orpc, pc_mask=mask, inserted_by=proc.pid,
    )
