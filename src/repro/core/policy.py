"""The translation-policy registry: every TLB policy the simulator knows.

BabelFish is one point in a wide translation-architecture design space.
Policy selection used to be a pair of booleans (``babelfish_tlb`` /
``babelfish_pt``) checked ad hoc across the MMU and experiment layers —
a dispatch pattern in which "not BabelFish" silently meant
"conventional", which breaks the moment a third policy exists. This
module replaces it with an explicit registry: a
:class:`TranslationPolicy` object per named policy, carrying

- **capability queries** (``uses_ccid``, ``coalesces``,
  ``has_victim_level``) the MMU, sanitizer, and experiments branch on
  instead of raw config flags (lint rule BF701 forbids the flags outside
  ``sim/config.py`` and this module);
- **structure geometry** (:meth:`TranslationPolicy.l2_tlb_params`,
  :meth:`TranslationPolicy.victim_tlb_params`) — how the policy carves
  the Table I L2 TLB budget, and whether it backs it with a
  cache-resident victim level;
- the **fill rule** (:meth:`TranslationPolicy.fill_l2`): what TLB entry
  a completed page walk installs, and which resident entries it may
  replace.

The *lookup* rules stay where they were: Figure 8's CCID lookup in
:mod:`repro.core.babelfish_tlb` (with its fast twin) and the
conventional PCID lookup next to it. A policy only chooses between
them (``uses_ccid``); both lookups are already generic over every
structure geometry a policy can declare, which is what keeps the
reference/fastpath/batch tiers bit-identical for free (DESIGN.md §17).

Registered policies:

``conventional``
    Per-process entries, private tables — the paper's Baseline.
``conventional_2x``
    The same lookup over a scaled L2 TLB ("larger conventional TLB",
    Section VII-C); the scale factor itself stays a config knob
    (``l2_tlb_scale``) so area sweeps remain one config away.
``babelfish``
    CCID-tagged entry sharing (Section III-A). The page-table half
    (Section III-B) stays an orthogonal config knob (``babelfish_pt``)
    because it is a kernel policy, not a TLB policy.
``babelfish_tlb`` / ``babelfish_pt``
    The two Table II ablations, registered under their own names so the
    ablation grid, run-cache keys, and serve requests name them
    explicitly (``babelfish_pt`` has a conventional TLB).
``victima``
    Victima-style cache-backed TLB reach (PAPERS.md): conventional
    L1/L2 semantics plus a large L3 victim level carved out of the L2
    cache's SRAM, probed between an L2 TLB miss and the page walk.
``coalesced``
    CoLT-style coalescing (PAPERS.md): walks that land in a run of
    contiguous 4K translations install one entry covering the whole
    aligned block, quadrupling reach per entry on contiguity-friendly
    layouts.
"""

import dataclasses

from repro.hw.params import TLBParams
from repro.hw.tlb import TLBEntry
from repro.hw.types import PAGE_SHIFT, PageSize
from repro.kernel.page_table import PTE, table_index
from repro.core.babelfish_tlb import make_entry


class CoalescedSpan:
    """A synthetic page-size-like object for coalesced TLB entries.

    The generic TLB structures (:class:`repro.hw.tlb.MultiSizeTLB` and
    its fast twin), the lookup functions, invalidation, and the
    sanitizer's coverage math only ever use ``shift``/``shift4k``/
    ``base_pages``/``base_mask`` — the same interface
    :class:`repro.hw.types.PageSize` members expose. A span of
    ``degree`` contiguous 4K pages therefore slots in as just another
    "page size", with ``coalesced`` marking the one semantic
    difference: the frames are only *contiguous*, not one larger page,
    so consumers that compare against architectural PTEs resolve
    per-4K-page (``ppn + offset``) instead of expecting a matching
    large-page PTE.
    """

    coalesced = True

    def __init__(self, degree):
        if degree < 2 or degree & (degree - 1):
            raise ValueError("coalescing degree must be a power of two "
                             ">= 2, got %r" % (degree,))
        self.shift4k = degree.bit_length() - 1
        self.shift = PAGE_SHIFT + self.shift4k
        self.value = self.shift
        self.base_pages = degree
        self.base_mask = degree - 1
        self.bytes = 1 << self.shift
        self.name = "COALESCED_%dK" % (4 * degree)

    def __repr__(self):
        return "<CoalescedSpan %s>" % self.name


#: The stock coalescing degree: 4 contiguous 4K pages per entry (CoLT's
#: sweet spot — deeper runs exist but 4 captures most buddy-allocator
#: contiguity). One module-level instance: TLB structures key their
#: per-size sub-TLBs by this object, and fills must use the same key.
COALESCED_SPAN_4 = CoalescedSpan(4)


class TranslationPolicy:
    """Interface every registered policy implements.

    Policies are stateless singletons: all run state lives in the TLB
    structures and the config, so one instance serves every MMU (and
    survives pickling config round-trips by name).
    """

    #: Registry name (the ``SimConfig.policy`` field value).
    name = None
    #: Entries are CCID-tagged and looked up with Figure 8's shared-entry
    #: rules (BabelFish); False means conventional VPN+PCID matching.
    uses_ccid = False
    #: Fills may install entries spanning several contiguous 4K vpns.
    coalesces = False
    #: An L3 victim TLB level sits between the L2 TLB and the walker.
    has_victim_level = False

    def l2_tlb_params(self, mmu_params):
        """How this policy carves the L2 TLB budget: a tuple of
        :class:`~repro.hw.params.TLBParams`, one per page-size
        structure, probed in order."""
        return (mmu_params.l2_4k, mmu_params.l2_2m, mmu_params.l2_1g)

    def victim_tlb_params(self, machine):
        """``(params_tuple, probe_cycles)`` for an L3 victim TLB level
        probed on an L2 TLB miss, or None for no victim level."""
        return None

    def fill_l2(self, kernel, proc, vpn_group, pte, leaf_table):
        """The L2 TLB entry a completed walk installs for ``proc`` at
        ``vpn_group``, plus the replacement predicate (which resident
        entries the insert may overwrite). Returns ``(entry, replace)``."""
        raise NotImplementedError


def _conventional_entry(proc, vpn_group, pte):
    size = pte.page_size
    return TLBEntry(vpn_group >> size.shift4k, pte.ppn, size,
                    pcid=proc.pcid, ccid=proc.ccid, writable=pte.writable,
                    cow=pte.cow, o_bit=True, inserted_by=proc.pid)


class ConventionalPolicy(TranslationPolicy):
    """Per-process TLB entries over private tables (the Baseline)."""

    def __init__(self, name="conventional"):
        self.name = name

    def fill_l2(self, kernel, proc, vpn_group, pte, leaf_table):
        entry = _conventional_entry(proc, vpn_group, pte)
        return entry, (lambda old: old.pcid == entry.pcid)


class BabelFishPolicy(TranslationPolicy):
    """CCID-tagged entry sharing (Section III-A / Figure 8)."""

    uses_ccid = True

    def __init__(self, name="babelfish"):
        self.name = name

    def fill_l2(self, kernel, proc, vpn_group, pte, leaf_table):
        size = pte.page_size
        fill_info = kernel.policy.fill_info(proc, leaf_table, vpn_group)
        entry = make_entry(vpn_group >> size.shift4k, pte, proc, fill_info,
                           size)
        replace = (lambda old: old.ccid == entry.ccid
                   and old.o_bit == entry.o_bit
                   and (not entry.o_bit or old.pcid == entry.pcid))
        return entry, replace


class VictimaPolicy(ConventionalPolicy):
    """Cache-backed TLB reach: conventional L1/L2 plus a large victim
    level resident in the L2 cache's SRAM (PAPERS.md's Victima).

    Modeling choices (DESIGN.md §17): the victim level is filled
    inclusively on every walk (rather than only on L2 TLB eviction) and
    probed at the L2 *cache's* access time — both deterministic
    simplifications that preserve the mechanism's reach/latency
    trade-off without modeling cache-block repurposing.
    """

    has_victim_level = True

    def __init__(self, name="victima"):
        super().__init__(name)

    def victim_tlb_params(self, machine):
        cache = machine.l2
        lines = cache.size_bytes // cache.line_size      # 4096 blocks
        entries_4k = lines // 2                          # 2048, 8-way: 256 sets
        entries_2m = lines // 16                         # 256, 8-way: 32 sets
        params = (
            TLBParams("L3 victim 4K", entries_4k, cache.ways,
                      PageSize.SIZE_4K, cache.access_cycles),
            TLBParams("L3 victim 2M", entries_2m, cache.ways,
                      PageSize.SIZE_2M, cache.access_cycles),
        )
        return params, cache.access_cycles


class CoalescedPolicy(TranslationPolicy):
    """CoLT-style contiguity exploitation: one entry per aligned run of
    ``span.base_pages`` contiguous 4K translations.

    The L2's 4K budget is split evenly between a coalesced structure
    (probed first) and a plain 4K structure for runs that do not
    coalesce; both keep the Table I associativity, so the area is the
    baseline's plus the span bookkeeping bits
    (:func:`repro.hw.cacti.coalesced_l2_geometries` prices them).

    A walk coalesces iff the whole aligned block, read from the leaf
    PTE table the walk traversed, is present, 4K, physically contiguous
    from the block base, and permission-uniform (writable/user/CoW).
    CoW pages may coalesce: a write hit CoW-faults exactly like a 4K
    entry would, and the break's invalidation drops the whole span (the
    refill then no longer coalesces, since the block's frames diverged).
    """

    coalesces = True

    def __init__(self, name="coalesced", span=COALESCED_SPAN_4):
        self.name = name
        self.span = span

    def l2_tlb_params(self, mmu_params):
        base = mmu_params.l2_4k
        half = max(1, base.num_sets // 2) * base.ways
        coalesced = dataclasses.replace(base, name="L2 TLB coalesced",
                                        entries=half, page_size=self.span)
        single = dataclasses.replace(base, entries=half)
        return (coalesced, single, mmu_params.l2_2m, mmu_params.l2_1g)

    def fill_l2(self, kernel, proc, vpn_group, pte, leaf_table):
        if pte.page_size is PageSize.SIZE_4K and leaf_table is not None:
            entry = self._coalesced_entry(proc, vpn_group, pte, leaf_table)
            if entry is not None:
                return entry, (lambda old: old.pcid == entry.pcid)
        entry = _conventional_entry(proc, vpn_group, pte)
        return entry, (lambda old: old.pcid == entry.pcid)

    def _coalesced_entry(self, proc, vpn_group, pte, leaf_table):
        span = self.span
        base_vpn = vpn_group & ~span.base_mask
        # A span-aligned block never crosses a 512-entry PTE table, so
        # every member PTE lives in the leaf table the walk reached.
        base_index = table_index(base_vpn, leaf_table.level)
        head = leaf_table.entries.get(base_index)
        if not (isinstance(head, PTE) and head.present
                and head.page_size is PageSize.SIZE_4K):
            return None
        for off in range(1, span.base_pages):
            member = leaf_table.entries.get(base_index + off)
            if not (isinstance(member, PTE) and member.present
                    and member.page_size is PageSize.SIZE_4K
                    and member.ppn == head.ppn + off
                    and member.writable == head.writable
                    and member.user == head.user
                    and member.cow == head.cow):
                return None
        return TLBEntry(base_vpn >> span.shift4k, head.ppn, span,
                        pcid=proc.pcid, ccid=proc.ccid,
                        writable=head.writable, user=head.user,
                        cow=head.cow, o_bit=True, inserted_by=proc.pid)


#: name -> policy singleton. The two ablation aliases are registered as
#: first-class names so ``SimConfig.policy`` (and with it every
#: run-cache key and serve wire request) says exactly which arm of the
#: Table II ablation a run belongs to.
_REGISTRY = {}


def register_policy(policy):
    if policy.name in _REGISTRY:
        raise ValueError("policy %r is already registered" % policy.name)
    _REGISTRY[policy.name] = policy
    return policy


register_policy(ConventionalPolicy("conventional"))
register_policy(ConventionalPolicy("conventional_2x"))
register_policy(ConventionalPolicy("babelfish_pt"))
register_policy(BabelFishPolicy("babelfish"))
register_policy(BabelFishPolicy("babelfish_tlb"))
register_policy(VictimaPolicy("victima"))
register_policy(CoalescedPolicy("coalesced"))


def known_policies():
    """Sorted registered policy names (the valid ``SimConfig.policy``
    values; serve's wire validation rejects anything else)."""
    return sorted(_REGISTRY)


def get_policy(name):
    """The policy singleton for ``name``; raises ``ValueError`` (naming
    the field and the valid names) for anything unregistered."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown policy %r for field 'policy' (known: %s)"
            % (name, ", ".join(known_policies())))
