"""MaskPages: OS-side storage for PC bitmasks (Appendix, Figures 12-13).

One MaskPage is associated with the set of PMD tables of a CCID group that
cover one 1GB region. It holds:

- up to 512 PC bitmasks, one per pmd_t entry (i.e. one per 2MB range /
  shared PTE table), and
- a single ordered ``pid_list`` of up to 32 pids: the processes that have
  performed a CoW anywhere in the region. Position *i* in the list owns
  bit *i* of every bitmask in this MaskPage.

The PC bitmask is *not* stored in page-table entries (that would change
their layout); the hardware fetches it from the MaskPage in parallel with
the pte_t when the pmd_t's ORPC bit demands it.
"""

from repro.hw.types import ENTRIES_PER_TABLE
from repro.core.opc import MAX_PRIVATE_COPIES
from repro.kernel.frames import FrameKind

#: 4K VPN bits consumed below a 1GB region (PMD-table coverage).
REGION_SHIFT = 18


def region_of(vpn):
    """1GB region id of a 4K VPN — selects the MaskPage."""
    return vpn >> REGION_SHIFT


def pmd_index_of(vpn):
    """pmd_t index within the region — selects the PC bitmask."""
    return (vpn >> 9) & (ENTRIES_PER_TABLE - 1)


class MaskPageFull(Exception):
    """A 33rd process attempted a CoW in the region (Appendix): the group
    must revert to non-shared translations for this PMD table set."""


class MaskPage:
    """One MaskPage, covering one 1GB region of a CCID group.

    ``per_range`` enables the Appendix's "extra indirection" extension:
    instead of one pid_list for the whole PMD table set (32 writers per
    1GB), each pmd_t entry gets its own pid_list (32 writers per 2MB
    range). The hardware cost is one more pointer dereference when
    loading a PC bitmask; the TLB field stays 32 bits.

    Slot lifetime: a pid_list slot is *positional* — position *i* owns
    bit *i* of every PC bitmask in scope — so reclaiming a dead writer
    (:meth:`release_pid`) leaves a ``None`` hole rather than compacting
    the list: surviving writers keep their bit indices (and so their
    TLB-resident bitmask snapshots keep meaning the same thing).
    :meth:`assign_bit` refills holes first, so a churning group never
    exhausts its 32 slots on dead pids.
    """

    def __init__(self, ccid, region, frame=None,
                 max_writers=MAX_PRIVATE_COPIES, per_range=False):
        self.ccid = ccid
        self.region = region
        #: Physical frame backing this MaskPage (0.19% space overhead of
        #: Section VII-D comes from these).
        self.frame = frame
        self.max_writers = max_writers
        self.per_range = per_range
        self.pid_list = []
        self._range_pid_lists = {}
        self._masks = {}

    def _list_for(self, pmd_index):
        if not self.per_range:
            return self.pid_list
        return self._range_pid_lists.setdefault(pmd_index, [])

    def bit_of(self, pid, pmd_index=None):
        """Bit index assigned to ``pid``, or None if it never CoW'ed in
        the covered scope (the region, or the 2MB range when indirected)."""
        pid_list = self._list_for(pmd_index if self.per_range else None)
        try:
            return pid_list.index(pid)
        except ValueError:
            return None

    def assign_bit(self, pid, pmd_index=None):
        """First CoW by ``pid`` in the scope: claim a slot in its
        pid_list — a reclaimed hole first, a fresh slot otherwise.

        Raises :class:`MaskPageFull` when all 32 slots hold *live*
        writers.
        """
        pid_list = self._list_for(pmd_index if self.per_range else None)
        try:
            return pid_list.index(pid)
        except ValueError:
            pass
        for bit, slot in enumerate(pid_list):
            if slot is None:
                pid_list[bit] = pid
                return bit
        if len(pid_list) >= self.max_writers:
            raise MaskPageFull(
                "region %#x of CCID %d already has %d writers"
                % (self.region, self.ccid, self.max_writers))
        pid_list.append(pid)
        return len(pid_list) - 1

    def release_pid(self, pid):
        """A writer exited: free its slot(s) and clear its bit from every
        PC bitmask it had set. Returns the pmd indexes whose bitmask
        changed (the caller recomputes ORPC for those ranges). Surviving
        writers keep their positions (``None`` holes, refilled by
        :meth:`assign_bit`).
        """
        changed = []
        if self.per_range:
            for pmd_index, pid_list in self._range_pid_lists.items():
                if pid in pid_list:
                    if self._clear(pid_list, pid_list.index(pid), pmd_index):
                        changed.append(pmd_index)
            for pmd_index in [i for i, lst in self._range_pid_lists.items()
                              if not any(s is not None for s in lst)]:
                del self._range_pid_lists[pmd_index]
        elif pid in self.pid_list:
            bit = self.pid_list.index(pid)
            self.pid_list[bit] = None
            for pmd_index in list(self._masks):
                if self._clear_mask_bit(pmd_index, bit):
                    changed.append(pmd_index)
            while self.pid_list and self.pid_list[-1] is None:
                self.pid_list.pop()
        return changed

    def _clear(self, pid_list, bit, pmd_index):
        pid_list[bit] = None
        while pid_list and pid_list[-1] is None:
            pid_list.pop()
        return self._clear_mask_bit(pmd_index, bit)

    def _clear_mask_bit(self, pmd_index, bit):
        mask = self._masks.get(pmd_index, 0)
        if not (mask >> bit) & 1:
            return False
        mask &= ~(1 << bit)
        if mask:
            self._masks[pmd_index] = mask
        else:
            self._masks.pop(pmd_index, None)
        return True

    @property
    def empty(self):
        """No live writers and no set bitmask bits: the page (and its
        frame) can be dropped."""
        return self.writers == 0 and not self._masks

    @property
    def has_private_copies(self):
        """Any range in the region still has a set PC-bitmask bit."""
        return bool(self._masks)

    def set_private(self, bit, pmd_index):
        """Record that bit-holder has a private copy of the 2MB range."""
        self._masks[pmd_index] = self._masks.get(pmd_index, 0) | (1 << bit)

    def mask(self, pmd_index):
        return self._masks.get(pmd_index, 0)

    def orpc(self, pmd_index):
        return self._masks.get(pmd_index, 0) != 0

    @property
    def writers(self):
        if self.per_range:
            return sum(sum(1 for s in lst if s is not None)
                       for lst in self._range_pid_lists.values())
        return sum(1 for s in self.pid_list if s is not None)

    def __repr__(self):
        return "<MaskPage ccid=%d region=%#x writers=%d masks=%d>" % (
            self.ccid, self.region, self.writers, len(self._masks))


class MaskPageDirectory:
    """All MaskPages, keyed by (ccid, region); allocates their frames."""

    def __init__(self, allocator=None, max_writers=MAX_PRIVATE_COPIES,
                 per_range_lists=False):
        self.allocator = allocator
        self.max_writers = max_writers
        #: Appendix extension: per-2MB-range pid lists via indirection.
        self.per_range_lists = per_range_lists
        self._pages = {}

    def get(self, ccid, vpn):
        return self._pages.get((ccid, region_of(vpn)))

    def get_or_create(self, ccid, vpn):
        key = (ccid, region_of(vpn))
        page = self._pages.get(key)
        if page is None:
            frame = (self.allocator.alloc(FrameKind.MASK_PAGE)
                     if self.allocator is not None else None)
            page = MaskPage(ccid, key[1], frame, max_writers=self.max_writers,
                            per_range=self.per_range_lists)
            self._pages[key] = page
        return page

    def drop(self, ccid, vpn):
        page = self._pages.pop((ccid, region_of(vpn)), None)
        if page is not None and page.frame is not None and self.allocator:
            self.allocator.decref(page.frame)
        return page

    def mask_for(self, ccid, vpn):
        """PC bitmask covering a 4K VPN (0 when no MaskPage exists)."""
        page = self.get(ccid, vpn)
        return page.mask(pmd_index_of(vpn)) if page else 0

    @property
    def total_pages(self):
        return len(self._pages)

    def __iter__(self):
        return iter(self._pages.values())
