"""Shared page tables across a CCID group (Sections III-B, IV-B, Appendix).

This is the BabelFish page-table policy plugged into
:class:`repro.kernel.kernel.Kernel`:

- ``fork_tables``: a fork inside the group copies only the upper levels
  (PGD/PUD/PMD) and points them at the *same* PTE tables (Figure 6). PMD
  tables that hold 2MB huge-page leaves are shared whole (Section IV-C).
- ``table_provider``: a fault in a shareable (file-backed) VMA attaches
  the group's existing PTE table for that 2MB range, so a page populated
  by one container is already present for the next one.
- ``cow_break``: a write to a CoW page in a shared table performs the
  paper's sequence — assign a PC-bitmask bit in the MaskPage, copy the
  page of 512 pte_t privately (Ownership set), point the writer's pmd_t at
  the copy, allocate the single written page, and invalidate only the
  shared (O=0) TLB entry for that VPN.
- More than 32 writers in a region reverts the whole PMD table set to
  non-shared translations (Appendix).
"""

from repro.hw.types import ENTRIES_PER_TABLE
from repro.core.mask_page import (
    REGION_SHIFT,
    MaskPageDirectory,
    MaskPageFull,
    pmd_index_of,
    region_of,
)
from repro.kernel.fault import (
    FaultOutcome,
    FaultType,
    InvalidationScope,
    TLBInvalidation,
)
from repro.kernel.frames import FrameKind
from repro.kernel.kernel import PrivatePTPolicy
from repro.kernel.page_table import PMD, PTE, PTE_LEVEL, PageTable, TableRef
from repro.kernel.vma import VMAKind


class SharedPTManager(PrivatePTPolicy):
    """BabelFish page-table sharing policy for a kernel instance."""

    name = "babelfish"
    is_babelfish = True

    def __init__(self, mask_dir=None, share_huge=True):
        self.mask_dir = mask_dir or MaskPageDirectory()
        self.share_huge = share_huge
        #: Attachable shared tables: (ccid, level, table_id) -> PageTable.
        #: Only file-backed ranges are attachable at fault time; anonymous
        #: fork-shared tables are marked via ``shared_key`` but never
        #: handed out to a process that did not inherit them.
        self.registry = {}
        self.attaches = 0
        self.registrations = 0
        self.cow_private_copies = 0
        self.reverts = 0

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _pte_table_key(ccid, vpn):
        return (ccid, PTE_LEVEL, vpn >> 9)

    @staticmethod
    def _pmd_table_key(ccid, vpn):
        return (ccid, PMD, region_of(vpn))

    def _alloc_table(self, kernel, level, owner=None):
        frame = kernel.allocator.alloc(FrameKind.PAGE_TABLE)
        table = PageTable(level, frame)
        table.owned_by = owner
        return table

    def _mark_shared(self, ccid, table, vpn, backing=None):
        """Mark a table as group-shared; ``backing`` (file id, file page)
        makes it attachable at fault time by other group members."""
        if table.shared_key is None:
            key = (self._pte_table_key(ccid, vpn) if table.level == PTE_LEVEL
                   else self._pmd_table_key(ccid, vpn))
            table.shared_key = key
            if backing is not None:
                self.registry[key] = (table, backing)
                self.registrations += 1

    # -- fork-time sharing (Figure 6) --------------------------------------------

    def fork_tables(self, kernel, parent, child):
        ccid = parent.ccid
        copied = 0
        for idx4, pud_ref in parent.tables.pgd.entries.items():
            if not isinstance(pud_ref, TableRef):
                continue
            child_pud = self._alloc_table(kernel, pud_ref.table.level)
            copied += 1
            child.tables.pgd.entries[idx4] = TableRef(child_pud)
            for idx3, pmd_ref in pud_ref.table.entries.items():
                if not isinstance(pmd_ref, TableRef):
                    continue
                pmd_table = pmd_ref.table
                base_vpn = (idx4 << 27) | (idx3 << 18)
                if self.share_huge and self._holds_huge(pmd_table):
                    # 2MB pages: merge the PMD tables themselves (Sec IV-C).
                    pmd_table.sharers += 1
                    self._mark_shared(ccid, pmd_table, base_vpn)
                    child_pud.entries[idx3] = TableRef(pmd_table)
                    continue
                child_pmd = self._alloc_table(kernel, pmd_table.level)
                copied += 1
                child_pud.entries[idx3] = TableRef(child_pmd)
                for idx2, pte_ref in pmd_table.entries.items():
                    if isinstance(pte_ref, TableRef):
                        pte_table = pte_ref.table
                        table_vpn = base_vpn | (idx2 << 9)
                        if pte_table.owned_by is not None:
                            # The parent already privatized this range
                            # (CoW before fork): the child gets its own
                            # owned copy, CoW-protected below.
                            clone = self._clone_table(kernel, pte_table,
                                                      owner=child.pid)
                            copied += 1
                            child_pmd.entries[idx2] = TableRef(clone, o_bit=True)
                            continue
                        pte_table.sharers += 1
                        vma = parent.mm.find(table_vpn)
                        backing = None
                        if (vma is not None and vma.shareable
                                and vma.start_vpn <= table_vpn):
                            backing = (vma.file.fid, vma.file_index(table_vpn))
                        self._mark_shared(ccid, pte_table, table_vpn, backing)
                        child_pmd.entries[idx2] = TableRef(
                            pte_table, orpc=pte_table.orpc)
                    elif isinstance(pte_ref, PTE):
                        # A huge leaf directly in a non-shared PMD copy
                        # (share_huge off): clone it CoW-style.
                        clone = pte_ref.clone()
                        child_pmd.entries[idx2] = clone
                        if clone.present:
                            kernel.allocator.incref(clone.ppn)
        child.tables.tables_allocated += copied
        self._write_protect_cow(parent)
        self._write_protect_cow(child)
        return copied

    @staticmethod
    def _holds_huge(pmd_table):
        return any(isinstance(e, PTE) for e in pmd_table.entries.values())

    @staticmethod
    def _write_protect_cow(parent):
        """Write-protect private-writable leaves for CoW. Shared tables
        make this a single pass covering parent and child together."""
        for vpn, _level, _table, _index, pte in parent.tables.iter_leaves():
            if not pte.present or not pte.writable:
                continue
            vma = parent.mm.find(vpn)
            if vma is None or vma.kind is VMAKind.FILE_SHARED:
                continue
            pte.writable = False
            pte.cow = True

    # -- fault-time attach --------------------------------------------------------

    def table_provider(self, kernel, proc, vma):
        if not vma.shareable:
            return None
        ccid = proc.ccid
        registry = self.registry

        def provide(level, vpn):
            if level != PTE_LEVEL:
                return None
            # The VMA must cover the table base so the registered backing
            # (file id + file page of the base) is well defined. Installs
            # into the table re-verify backing page by page
            # (_backing_matches), so partially-covered tables are safe.
            table_base = vpn & ~(ENTRIES_PER_TABLE - 1)
            if vma.start_vpn > table_base:
                return None
            # Identity of the backing range: a process that maps a
            # *different* file (or offset) at the same group VPN must not
            # attach — it would inherit someone else's translations.
            backing = (vma.file.fid, vma.file_index(table_base))
            key = self._pte_table_key(ccid, vpn)
            found = registry.get(key)
            if found is not None:
                table, reg_backing = found
                if reg_backing != backing:
                    return None
                table.sharers += 1
                self.attaches += 1
                return table
            table = self._alloc_table(kernel, PTE_LEVEL)
            proc.tables.tables_allocated += 1
            table.shared_key = key
            registry[key] = (table, backing)
            self.registrations += 1
            return table

        return provide

    # -- CoW in shared tables (Section III-A) ---------------------------------------

    def cow_break(self, kernel, proc, vma, vpn, table, index, pte):
        if table.owned_by == proc.pid:
            # The writer already holds the private pte-page copy for this
            # 2MB range; break the page privately, but the shared (O=0)
            # entry for this VPN still carries a stale PC bitmask and must
            # be invalidated everywhere (Section III-A).
            outcome = kernel.default_cow_break(proc, vpn, table, index, pte)
            outcome.invalidations.append(TLBInvalidation(
                vpn, InvalidationScope.SHARED_ENTRY, ccid=proc.ccid))
            return outcome
        if table.shared_key is None:
            return None  # plain private table: conventional CoW

        private = self._privatize_table_for(kernel, proc, vpn, table)
        if private is None:
            # MaskPage overflow: the region reverted to non-shared tables.
            return self._revert_and_break(kernel, proc, vpn)

        # Break the written page inside the private copy.
        priv_pte = private.entries[index]
        costs = kernel.costs
        pages = priv_pte.page_size.base_pages
        new_ppn = kernel.allocator.alloc(FrameKind.DATA, pages=pages)
        kernel.allocator.decref(priv_pte.ppn)
        priv_pte.ppn = new_ppn
        priv_pte.cow = False
        priv_pte.writable = True
        priv_pte.dirty = True
        priv_pte.file = None
        priv_pte.file_index = None
        self.cow_private_copies += 1
        cycles = (costs.minor_fault + costs.cow_extra
                  + costs.pte_page_copy + costs.tlb_shootdown)
        invalidations = [
            # Only the single shared (O=0) entry for this VPN needs a
            # remote shootdown (Section III-A)...
            TLBInvalidation(vpn, InvalidationScope.SHARED_ENTRY,
                            ccid=proc.ccid),
            # ...plus the writer's own stale private entry locally.
            TLBInvalidation(vpn, InvalidationScope.PROCESS,
                            pcid=proc.pcid, ccid=proc.ccid),
        ]
        return FaultOutcome(FaultType.COW, cycles, invalidations,
                            ppn=new_ppn, pte_page_copied=True)

    def mask_domain(self, vpn):
        """The scope a process's PC bit covers: the 1GB region (paper
        default), or the 2MB range under the indirection extension."""
        if self.mask_dir.per_range_lists:
            return vpn >> 9
        return region_of(vpn)

    def entry_mask_domain(self, entry):
        """Same scope computed from a TLB entry (used by the lookup)."""
        vpn4k = entry.vpn << (entry.page_size.shift - 12)
        return self.mask_domain(vpn4k)

    def _privatize_table_for(self, kernel, proc, vpn, table):
        """Give ``proc`` a private (owned) copy of a shared table per the
        paper's CoW sequence: assign a PC-bitmask bit in the MaskPage, copy
        the page of 512 pte_t, swap the writer's pmd_t, raise ORPC.

        Returns the private table, or None if the MaskPage is full (the
        caller must revert the region)."""
        mask_page = self.mask_dir.get_or_create(proc.ccid, vpn)
        try:
            bit = mask_page.assign_bit(proc.pid, pmd_index_of(vpn))
        except MaskPageFull:
            return None
        proc.pc_bits[self.mask_domain(vpn)] = bit
        mask_page.set_private(bit, pmd_index_of(vpn))

        private = self._clone_table(kernel, table, owner=proc.pid)
        self._swap_writer_ref(kernel, proc, vpn, table, private)
        # All sharers must now consult the PC bitmask for this range.
        table.orpc = True
        kernel.pte_pages_copied += 1
        return private

    def install_target(self, kernel, proc, vma, vpn, table, index,
                       private_content):
        """Validate an install into a possibly-shared table.

        Private content (anonymous pages; private copies of MAP_PRIVATE
        pages) must never land in a shared table — other group members
        would inherit this process's private frame. Shareable content may
        only land in a shared table whose *registered backing* (file and
        offset of the 2MB range) matches this VMA's; a process that
        remapped the range to a different file gets a private copy
        instead. Returns ``(table, index, extra_cycles)``."""
        if table.shared_key is None or table.owned_by == proc.pid:
            return table, index, 0
        if not private_content and self._backing_matches(vma, vpn, table):
            return table, index, 0
        private = self._privatize_table_for(kernel, proc, vpn, table)
        if private is None:
            self._revert_region_for(kernel, proc, vpn)
            path = proc.tables.walk(vpn)
            _level, new_table, new_index, _entry = path[-1]
            return new_table, new_index, kernel.costs.pte_page_copy
        return private, index, kernel.costs.pte_page_copy

    def _backing_matches(self, vma, vpn, table):
        """Does this VMA back ``vpn`` with the same file page the shared
        table was registered for?"""
        registered = self.registry.get(table.shared_key)
        if registered is None or registered[0] is not table:
            return False
        if not vma.kind.file_backed:
            return False
        fid, base_index = registered[1]
        table_base = vpn & ~(ENTRIES_PER_TABLE - 1)
        expected_index = base_index + (vpn - table_base)
        return (vma.file.fid == fid
                and vma.file_index(vpn) == expected_index)

    def _clone_table(self, kernel, table, owner):
        """Copy a page of 512 translations; the clone's translations carry
        the Ownership bit (modelled as ``owned_by``)."""
        clone = self._alloc_table(kernel, table.level, owner=owner)
        for index, entry in table.entries.items():
            if isinstance(entry, PTE):
                copy = entry.clone()
                clone.entries[index] = copy
                if copy.present:
                    kernel.allocator.incref(copy.ppn)
            else:  # TableRef inside a shared PMD table (huge-page mode)
                entry.table.sharers += 1
                clone.entries[index] = TableRef(entry.table, entry.o_bit,
                                                entry.orpc)
        return clone

    def _swap_writer_ref(self, kernel, proc, vpn, shared_table, private):
        """Point the writer's parent entry at its private copy."""
        path = proc.tables.walk(vpn)
        for level, parent_table, index, entry in path:
            if isinstance(entry, TableRef) and entry.table is shared_table:
                parent_table.entries[index] = TableRef(private, o_bit=True)
                shared_table.sharers -= 1
                if shared_table.sharers == 0:
                    freed = kernel._teardown(shared_table)
                    self.on_tables_freed(kernel, freed)
                return
        raise RuntimeError("writer pid=%d does not reference the shared table"
                           % proc.pid)

    def _revert_region_for(self, kernel, proc, vpn):
        """Appendix: a 33rd writer forces every group member onto private
        translations for the whole PMD table set. Returns clone count."""
        ccid = proc.ccid
        region = region_of(vpn)
        clones = 0
        for member in list(kernel.processes.values()):
            if member.ccid != ccid or not member.alive:
                continue
            clones += self._privatize_region(kernel, member, region)
        self.mask_dir.drop(ccid, vpn)
        self.reverts += 1
        return clones

    def _revert_and_break(self, kernel, proc, vpn):
        """33rd writer in a region: revert the PMD table set, then the
        faulting write proceeds as a conventional CoW."""
        clones = self._revert_region_for(kernel, proc, vpn)

        path = proc.tables.walk(vpn)
        _level, table, index, pte = path[-1]
        outcome = kernel.default_cow_break(proc, vpn, table, index, pte)
        outcome.cycles += clones * kernel.costs.pte_page_copy
        outcome.invalidations.append(TLBInvalidation(
            vpn, InvalidationScope.REGION_SHARED, ccid=proc.ccid))
        return outcome

    def _privatize_region(self, kernel, member, region):
        idx4, idx3 = region >> 9, region & (ENTRIES_PER_TABLE - 1)
        pud_ref = member.tables.pgd.entries.get(idx4)
        if not isinstance(pud_ref, TableRef):
            return 0
        pmd_ref = pud_ref.table.entries.get(idx3)
        if not isinstance(pmd_ref, TableRef):
            return 0
        pmd_table = pmd_ref.table
        clones = 0
        if pmd_table.shared_key is not None and pmd_table.owned_by is None:
            private = self._clone_table(kernel, pmd_table, owner=member.pid)
            pud_ref.table.entries[idx3] = TableRef(private, o_bit=True)
            self._release_shared(kernel, pmd_table)
            kernel.pte_pages_copied += 1
            return 1
        for idx2, ref in list(pmd_table.entries.items()):
            if not isinstance(ref, TableRef):
                continue
            pte_table = ref.table
            if pte_table.shared_key is None or pte_table.owned_by is not None:
                continue
            private = self._clone_table(kernel, pte_table, owner=member.pid)
            pmd_table.entries[idx2] = TableRef(private, o_bit=True)
            self._release_shared(kernel, pte_table)
            kernel.pte_pages_copied += 1
            clones += 1
        return clones

    def _release_shared(self, kernel, table):
        table.sharers -= 1
        self.registry.pop(table.shared_key, None)
        if table.sharers == 0:
            freed = kernel._teardown(table)
            self.on_tables_freed(kernel, freed)

    # -- TLB fill metadata (Figure 8's inputs) ----------------------------------------

    def fill_info(self, proc, table, vpn):
        """(o_bit, orpc, pc_mask) for an entry fetched from ``table``."""
        if table.shared_key is None:
            return True, False, 0
        if table.orpc:
            return False, True, self.mask_dir.mask_for(proc.ccid, vpn)
        return False, False, 0

    # -- teardown ------------------------------------------------------------------------

    def on_tables_freed(self, kernel, tables):
        for table in tables:
            if table.shared_key is not None:
                self.registry.pop(table.shared_key, None)

    def on_process_exit(self, kernel, proc):
        """Exit-time O-PC reclamation: free the dead writer's MaskPage
        slots, clear its bits from every PC bitmask, recompute the
        affected tables' ORPC, and drop MaskPages that went empty
        (freeing their frames).

        Without this, ``MaskPage.pid_list`` only ever grows: a group that
        churns more than 32 writers over its lifetime hits ``max_writers``
        on mostly-dead pids and needlessly reverts the region to
        non-shared translations. Returns one REGION_SHARED invalidation
        per touched region — TLB entries there may carry PC-bitmask
        snapshots with the dead writer's bit, and after reclamation that
        bit can be handed to a *new* writer whose private copies the old
        snapshots know nothing about.
        """
        if not proc.pc_bits:
            return []
        regions = {domain >> 9 if self.mask_dir.per_range_lists else domain
                   for domain in proc.pc_bits}
        invalidations = []
        for region in sorted(regions):
            region_vpn = region << REGION_SHIFT
            page = self.mask_dir.get(proc.ccid, region_vpn)
            if page is not None:
                for pmd_index in page.release_pid(proc.pid):
                    self._recompute_orpc(kernel, proc.ccid, region,
                                         pmd_index, page)
                if page.empty:
                    self.mask_dir.drop(proc.ccid, region_vpn)
            invalidations.append(TLBInvalidation(
                region_vpn, InvalidationScope.REGION_SHARED,
                ccid=proc.ccid))
        proc.pc_bits.clear()
        return invalidations

    def _recompute_orpc(self, kernel, ccid, region, pmd_index, page):
        """A range's PC bitmask changed; if it dropped to zero, clear the
        covering shared table's ORPC so future fills stop paying the long
        bitmask access (Figure 5b's saving, restored after churn)."""
        if page.mask(pmd_index) != 0:
            return
        table = self._find_shared_table(
            kernel, ccid, (ccid, PTE_LEVEL, (region << 9) | pmd_index))
        if table is not None:
            table.orpc = False
            return
        # Huge-page mode: the shared table is the PMD itself, whose ORPC
        # flag covers every 2MB range in the region.
        pmd = self._find_shared_table(kernel, ccid, (ccid, PMD, region))
        if pmd is not None and not page.has_private_copies:
            pmd.orpc = False

    def _find_shared_table(self, kernel, ccid, key):
        """The live shared table registered (or fork-shared) under
        ``key``, if any group member still reaches it."""
        found = self.registry.get(key)
        if found is not None:
            return found[0]
        vpn = (key[2] << 9) if key[1] == PTE_LEVEL else (key[2] << REGION_SHIFT)
        for member in kernel.processes.values():
            if not member.alive or member.ccid != ccid:
                continue
            for _level, table, _index, _entry in member.tables.walk(vpn):
                if table.shared_key == key and table.owned_by is None:
                    return table
        return None
