"""BabelFish's contribution: fused address translations for containers.

Two cooperating mechanisms (Section III):

- **TLB entry sharing** (:mod:`repro.core.babelfish_tlb`): CCID-tagged
  entries with the Ownership-PrivateCopy field, implementing the Figure 8
  lookup flowchart.
- **Page table entry sharing** (:mod:`repro.core.shared_pt`): processes in
  a CCID group share PTE (and PMD) tables; CoW breaks copy a page of 512
  pte_t and track private-copy holders in MaskPages
  (:mod:`repro.core.mask_page`).

ASLR support (Section IV-D) is in :mod:`repro.core.aslr`.
"""

from repro.core.ccid import CCIDGroup, CCIDRegistry
from repro.core.opc import MAX_PRIVATE_COPIES, OPCField
from repro.core.mask_page import MaskPage, MaskPageDirectory, MaskPageFull
from repro.core.shared_pt import SharedPTManager
from repro.core.babelfish_tlb import BabelFishLookup, babelfish_fill_fields
from repro.core.aslr import ASLRMode, group_layout_for, process_layout_for

__all__ = [
    "CCIDGroup",
    "CCIDRegistry",
    "OPCField",
    "MAX_PRIVATE_COPIES",
    "MaskPage",
    "MaskPageDirectory",
    "MaskPageFull",
    "SharedPTManager",
    "BabelFishLookup",
    "babelfish_fill_fields",
    "ASLRMode",
    "group_layout_for",
    "process_layout_for",
]
