"""The Ownership-PrivateCopy (O-PC) field (Figure 4).

The field packs:

- ``O`` — the Ownership bit: the translation is private to one process
  (TLB hits additionally require a PCID match).
- ``PC`` — a 32-bit PrivateCopy bitmask: bit *i* set means the *i*-th
  process in the MaskPage's pid_list holds a private copy of this page.
- ``ORPC`` — the OR of all PC bits, letting the hardware skip reading or
  loading the bitmask when nothing is privately copied (Figure 5b).
"""

MAX_PRIVATE_COPIES = 32
PC_MASK_ALL = (1 << MAX_PRIVATE_COPIES) - 1


class OPCField:
    """A convenience wrapper over the packed O-PC bits."""

    __slots__ = ("o_bit", "pc_mask")

    def __init__(self, o_bit=False, pc_mask=0):
        if pc_mask & ~PC_MASK_ALL:
            raise ValueError("PC bitmask wider than %d bits" % MAX_PRIVATE_COPIES)
        self.o_bit = o_bit
        self.pc_mask = pc_mask

    @property
    def orpc(self):
        return self.pc_mask != 0

    def set_bit(self, bit):
        if not 0 <= bit < MAX_PRIVATE_COPIES:
            raise ValueError("PC bit %d out of range" % bit)
        self.pc_mask |= 1 << bit

    def clear_bit(self, bit):
        self.pc_mask &= ~(1 << bit)

    def test_bit(self, bit):
        return bool((self.pc_mask >> bit) & 1)

    def packed(self):
        """The field as stored in a TLB entry: PC | ORPC | O (Figure 4)."""
        return (self.pc_mask << 2) | (int(self.orpc) << 1) | int(self.o_bit)

    @classmethod
    def unpack(cls, value):
        field = cls(bool(value & 1), value >> 2)
        return field

    def __eq__(self, other):
        return (isinstance(other, OPCField)
                and self.o_bit == other.o_bit
                and self.pc_mask == other.pc_mask)

    def __repr__(self):
        return "<O-PC O=%d ORPC=%d PC=%#010x>" % (
            self.o_bit, self.orpc, self.pc_mask)
