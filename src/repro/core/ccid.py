"""Container Context Identifiers (Section III-A).

All containers created by a user for the same application get one CCID;
processes in a CCID group are the sharing domain for TLB entries and page
tables. This matches the paper's conservative security domain (Section V):
a single user's containers running a single application.
"""

import hashlib
import itertools

CCID_BITS = 12


def stable_group_seed(seed, user, application):
    """Deterministic 32-bit ASLR seed for a CCID group.

    Must not use ``hash()``: string hashing is randomized per process
    (``PYTHONHASHSEED``), which would make a group's layout — and hence
    page-walk and TLB-miss counts — differ between processes. Every
    cross-process bit-identity guarantee (the disk run cache, ``--jobs
    N`` parallel sweeps, the serving daemon's pool workers) depends on
    this derivation being a pure function of its arguments.
    """
    blob = "\x00".join(str(part) for part in (seed, user, application))
    return int.from_bytes(hashlib.sha256(blob.encode()).digest()[:4],
                          "big")


class CCIDGroup:
    def __init__(self, ccid, user, application, aslr_seed):
        self.ccid = ccid
        self.user = user
        self.application = application
        #: Per-group ASLR seed: under ASLR-SW every process in the group
        #: derives its layout from this seed (Section IV-D).
        self.aslr_seed = aslr_seed
        self.members = []

    def add(self, process):
        self.members.append(process)

    def remove(self, process):
        if process in self.members:
            self.members.remove(process)

    def live_members(self):
        return [p for p in self.members if p.alive]

    def __repr__(self):
        return "<CCIDGroup %d %s/%s members=%d>" % (
            self.ccid, self.user, self.application, len(self.members))


class CCIDRegistry:
    """Allocates 12-bit CCIDs, one per (user, application) pair."""

    def __init__(self, seed=1234):
        self._next = itertools.count(1)
        self._groups = {}
        self._by_ccid = {}
        self._seed = seed

    def group_for(self, user, application):
        key = (user, application)
        group = self._groups.get(key)
        if group is None:
            ccid = next(self._next)
            if ccid >= (1 << CCID_BITS):
                raise ValueError("out of CCIDs")
            group = CCIDGroup(ccid, user, application,
                              aslr_seed=stable_group_seed(
                                  self._seed, user, application))
            self._groups[key] = group
            self._by_ccid[ccid] = group
        return group

    def by_ccid(self, ccid):
        return self._by_ccid.get(ccid)

    def __len__(self):
        return len(self._groups)
